//! Scenario generation.
//!
//! A *scenario* is a deterministic realization of every random variable in a
//! relation. The generator supports:
//!
//! * **scenario-wise** generation — realize one whole column for one scenario
//!   (used when building SAA formulations and summaries scenario by scenario);
//! * **tuple-wise** generation — realize all `M` scenarios for one tuple
//!   (used by the tuple-wise summarization strategy of Section 5.5);
//! * **sparse** generation — realize values only for the tuples present in a
//!   candidate package (used by out-of-sample validation, Section 3.2).
//!
//! All three orders produce identical values because every `(column,
//! driver-group, scenario)` cell derives its RNG independently (see
//! [`crate::seed`]). The same property makes generation embarrassingly
//! parallel: large matrix requests are chunked by tuple across `std::thread`
//! workers and produce **bit-identical** results to the serial path.

use crate::relation::{Relation, StochasticColumn};
use crate::seed::{cell_rng, column_prefix, Stream};
use crate::Result;
use std::num::NonZeroUsize;

/// Number of `(tuple, scenario)` cells above which dense/sparse generation
/// fans out across threads. Below this, thread spawn overhead dominates.
const PARALLEL_CELL_THRESHOLD: usize = 1 << 14;

/// Target cells per [`crate::vg::VgFunction::realize_block`] kernel call:
/// tuples are tiled so one dispatch covers roughly this many cells, keeping
/// per-call overhead negligible while bounding each tile's working set.
const KERNEL_TILE_CELLS: usize = 4096;

/// Tile edge for the blocked tuple-major → scenario-major transpose.
const TRANSPOSE_TILE: usize = 64;

/// Transpose a flat tuple-major buffer (`flat[i * m + j]`) into the
/// scenario-major layout of [`ScenarioMatrix`] (`data[j * n + i]`), tiled so
/// both sides stay cache-resident.
fn transpose_tuple_major(flat: &[f64], n: usize, m: usize) -> Vec<f64> {
    let mut data = vec![0.0f64; n * m];
    for i0 in (0..n).step_by(TRANSPOSE_TILE) {
        let i1 = (i0 + TRANSPOSE_TILE).min(n);
        for j0 in (0..m).step_by(TRANSPOSE_TILE) {
            let j1 = (j0 + TRANSPOSE_TILE).min(m);
            for i in i0..i1 {
                let row = &flat[i * m..(i + 1) * m];
                for j in j0..j1 {
                    data[j * n + i] = row[j];
                }
            }
        }
    }
    data
}

/// Worker count for a request of `cells` total realizations over `tuples`
/// tuples: 1 for small requests, otherwise up to the machine's parallelism.
fn auto_threads(cells: usize, tuples: usize) -> usize {
    if cells < PARALLEL_CELL_THRESHOLD || tuples < 2 {
        return 1;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(tuples)
}

/// One realized stochastic column for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Index of the scenario within its stream.
    pub index: usize,
    /// Realized value per tuple.
    pub values: Vec<f64>,
}

/// A dense matrix of realizations: `M` scenarios over `N` tuples for one
/// stochastic column. Stored row-major by scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    n_tuples: usize,
    /// `data[j * n_tuples + i]` is the value of tuple `i` in scenario `j`.
    data: Vec<f64>,
}

impl ScenarioMatrix {
    /// Build from per-scenario rows.
    pub fn from_scenarios(n_tuples: usize, scenarios: &[Scenario]) -> Self {
        let mut data = Vec::with_capacity(n_tuples * scenarios.len());
        for s in scenarios {
            debug_assert_eq!(s.values.len(), n_tuples);
            data.extend_from_slice(&s.values);
        }
        ScenarioMatrix { n_tuples, data }
    }

    /// The raw scenario-major storage (`data[j * n_tuples + i]`). The
    /// persistent scenario store serializes exactly these words (as
    /// little-endian `f64` bits), so a reloaded block is bit-identical.
    pub fn raw_data(&self) -> &[f64] {
        &self.data
    }

    /// Rebuild a matrix from scenario-major raw storage, the inverse of
    /// [`Self::raw_data`]. `data.len()` must be `n_tuples` × the scenario
    /// count of the original block.
    pub(crate) fn from_raw(n_tuples: usize, data: Vec<f64>) -> Self {
        ScenarioMatrix { n_tuples, data }
    }

    /// A matrix whose every scenario row equals `values`. This is the shape
    /// the moment prefilter produces for provably scenario-invariant columns
    /// (see [`crate::vg::VgFunction::is_scenario_invariant`]): one probed
    /// realization broadcast over `m` scenarios, bit-identical to generating
    /// all `m` because the realized value does not depend on the RNG.
    pub fn broadcast(values: &[f64], m: usize) -> Self {
        let mut data = Vec::with_capacity(values.len() * m);
        for _ in 0..m {
            data.extend_from_slice(values);
        }
        ScenarioMatrix {
            n_tuples: values.len(),
            data,
        }
    }

    /// Number of scenarios.
    pub fn num_scenarios(&self) -> usize {
        self.data.len().checked_div(self.n_tuples).unwrap_or(0)
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> usize {
        self.n_tuples
    }

    /// The realization of `tuple` in `scenario`.
    pub fn value(&self, scenario: usize, tuple: usize) -> f64 {
        self.data[scenario * self.n_tuples + tuple]
    }

    /// One scenario as a slice of tuple values.
    pub fn scenario(&self, scenario: usize) -> &[f64] {
        &self.data[scenario * self.n_tuples..(scenario + 1) * self.n_tuples]
    }

    /// Append one more scenario row.
    pub fn push_scenario(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), self.n_tuples);
        self.data.extend_from_slice(values);
    }

    /// Per-tuple mean over all scenarios.
    pub fn column_means(&self) -> Vec<f64> {
        let m = self.num_scenarios();
        let mut means = vec![0.0; self.n_tuples];
        if m == 0 {
            return means;
        }
        for j in 0..m {
            let row = self.scenario(j);
            for (mean, v) in means.iter_mut().zip(row) {
                *mean += v;
            }
        }
        for mean in &mut means {
            *mean /= m as f64;
        }
        means
    }
}

/// Seeded scenario generator over a relation's stochastic columns.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioGenerator {
    base_seed: u64,
    stream: Stream,
}

impl ScenarioGenerator {
    /// Generator for the optimization stream.
    pub fn new(base_seed: u64) -> Self {
        ScenarioGenerator {
            base_seed,
            stream: Stream::Optimization,
        }
    }

    /// Generator for the out-of-sample validation stream. The validation
    /// stream is disjoint from the optimization stream even under the same
    /// base seed, mirroring the paper's re-seeding before validation.
    pub fn validation(base_seed: u64) -> Self {
        ScenarioGenerator {
            base_seed,
            stream: Stream::Validation,
        }
    }

    /// The base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Which stream this generator draws from.
    pub fn stream(&self) -> Stream {
        self.stream
    }

    /// Realize the value of one `(column, tuple, scenario)` cell.
    pub fn realize_cell(
        &self,
        relation: &Relation,
        column: &str,
        tuple: usize,
        scenario: usize,
    ) -> Result<f64> {
        let sc = relation.stochastic_column(column)?;
        let group = sc.vg.driver_group(tuple);
        let mut rng = cell_rng(self.base_seed, self.stream, sc.tag, group, scenario as u64);
        Ok(sc.vg.realize(tuple, &mut rng))
    }

    /// Realize one whole column for one scenario (scenario-wise order).
    pub fn realize_column(
        &self,
        relation: &Relation,
        column: &str,
        scenario: usize,
    ) -> Result<Scenario> {
        let sc = relation.stochastic_column(column)?;
        let n = relation.len();
        let tuples: Vec<usize> = (0..n).collect();
        // A one-scenario block: the flat tuple-major buffer *is* the column.
        let values = self.realize_flat(sc, &tuples, scenario..scenario + 1, 1);
        Ok(Scenario {
            index: scenario,
            values,
        })
    }

    /// Realize all `scenarios` realizations of one tuple (tuple-wise order).
    pub fn realize_tuple(
        &self,
        relation: &Relation,
        column: &str,
        tuple: usize,
        scenarios: std::ops::Range<usize>,
    ) -> Result<Vec<f64>> {
        let sc = relation.stochastic_column(column)?;
        Ok(self.realize_flat(sc, &[tuple], scenarios, 1))
    }

    /// Drive the column's block kernel over one worker's tuple share,
    /// tiling tuples so each [`crate::vg::VgFunction::realize_block`]
    /// dispatch covers roughly [`KERNEL_TILE_CELLS`] cells.
    fn realize_tiles(
        &self,
        sc: &StochasticColumn,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        let m = scenarios.len();
        if m == 0 || tuples.is_empty() {
            return;
        }
        let prefix = column_prefix(self.base_seed, self.stream, sc.tag);
        let tile = (KERNEL_TILE_CELLS / m).max(1);
        for (tchunk, ochunk) in tuples.chunks(tile).zip(out.chunks_mut(tile * m)) {
            sc.vg
                .realize_block(prefix, tchunk, scenarios.clone(), ochunk);
        }
    }

    /// Realize `tuples × scenarios` into a flat tuple-major buffer
    /// (`out[ti * m + jj]`), chunking tuples across `threads` workers.
    /// Because every cell derives its RNG from the counter-based key, the
    /// result is bit-identical for any thread count and any tile split.
    fn realize_flat(
        &self,
        sc: &StochasticColumn,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
        threads: usize,
    ) -> Vec<f64> {
        let m = scenarios.len();
        let mut out = vec![0.0f64; tuples.len() * m];
        if m == 0 || tuples.is_empty() {
            return out;
        }
        let threads = threads.clamp(1, tuples.len());
        if threads == 1 {
            self.realize_tiles(sc, tuples, scenarios, &mut out);
            return out;
        }
        let chunk = tuples.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (tchunk, ochunk) in tuples.chunks(chunk).zip(out.chunks_mut(chunk * m)) {
                let scenarios = scenarios.clone();
                scope.spawn(move || self.realize_tiles(sc, tchunk, scenarios, ochunk));
            }
        });
        out
    }

    /// Realize a dense `M x N` matrix of the first `m` scenarios,
    /// parallelizing across tuples for large requests.
    pub fn realize_matrix(
        &self,
        relation: &Relation,
        column: &str,
        m: usize,
    ) -> Result<ScenarioMatrix> {
        let n = relation.len();
        self.realize_matrix_with_threads(relation, column, m, auto_threads(n * m, n))
    }

    /// [`Self::realize_matrix`] with an explicit worker count (1 forces the
    /// serial path). Results are bit-identical for every `threads` value.
    pub fn realize_matrix_with_threads(
        &self,
        relation: &Relation,
        column: &str,
        m: usize,
        threads: usize,
    ) -> Result<ScenarioMatrix> {
        let n = relation.len();
        let sc = relation.stochastic_column(column)?;
        let tuples: Vec<usize> = (0..n).collect();
        let flat = self.realize_flat(sc, &tuples, 0..m, threads);
        Ok(ScenarioMatrix {
            n_tuples: n,
            data: transpose_tuple_major(&flat, n, m),
        })
    }

    /// Realize values only for the given tuples across `scenarios`
    /// (sparse/package-restricted generation used by validation). Returns one
    /// vector per scenario, aligned with `tuples`; large requests are
    /// parallelized across tuples.
    pub fn realize_sparse(
        &self,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
    ) -> Result<Vec<Vec<f64>>> {
        let threads = auto_threads(tuples.len() * scenarios.len(), tuples.len());
        self.realize_sparse_with_threads(relation, column, tuples, scenarios, threads)
    }

    /// [`Self::realize_sparse`] with an explicit worker count (1 forces the
    /// serial path). Results are bit-identical for every `threads` value.
    pub fn realize_sparse_with_threads(
        &self,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
        threads: usize,
    ) -> Result<Vec<Vec<f64>>> {
        let m = scenarios.len();
        let sc = relation.stochastic_column(column)?;
        if tuples.is_empty() {
            return Ok(vec![Vec::new(); m]);
        }
        let flat = self.realize_flat(sc, tuples, scenarios, threads);
        let data = transpose_tuple_major(&flat, tuples.len(), m);
        Ok(data.chunks(tuples.len()).map(|row| row.to_vec()).collect())
    }

    /// Realize the first `m` scenarios of a stochastic column restricted to
    /// `tuples`, as a dense [`ScenarioMatrix`] whose column `i` corresponds
    /// to `tuples[i]`. This is the block shape memoized by
    /// [`crate::ScenarioCache`]; generation parallelizes like the other
    /// matrix paths and is bit-identical to the serial order.
    pub fn realize_sparse_matrix(
        &self,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        m: usize,
    ) -> Result<ScenarioMatrix> {
        let n = tuples.len();
        self.realize_sparse_matrix_range(relation, column, tuples, 0..m, auto_threads(n * m, n))
    }

    /// Realize an arbitrary scenario *range* of a stochastic column restricted
    /// to `tuples`, as a dense [`ScenarioMatrix`] whose row `j` holds scenario
    /// `scenarios.start + j`. The blocked out-of-sample validator uses this to
    /// stream `M̂` scenarios in bounded chunks; `threads == 0` picks a worker
    /// count automatically, and — because every cell seeds its own RNG — the
    /// result is bit-identical for every `threads` value.
    pub fn realize_sparse_matrix_range(
        &self,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
        threads: usize,
    ) -> Result<ScenarioMatrix> {
        let n = tuples.len();
        let m = scenarios.len();
        let threads = if threads == 0 {
            auto_threads(n * m, n)
        } else {
            threads
        };
        let sc = relation.stochastic_column(column)?;
        let flat = self.realize_flat(sc, tuples, scenarios, threads);
        Ok(ScenarioMatrix {
            n_tuples: n,
            data: transpose_tuple_major(&flat, n, m),
        })
    }

    /// Per-tuple empirical mean and standard deviation over the first `m`
    /// scenarios of this generator's stream, for the given tuples.
    /// SketchRefine uses these as distributional-similarity features for
    /// partitioning; generation is parallelized like the matrix paths.
    pub fn tuple_moments(
        &self,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        m: usize,
    ) -> Result<Vec<(f64, f64)>> {
        if m == 0 {
            return Ok(vec![(0.0, 0.0); tuples.len()]);
        }
        let sc = relation.stochastic_column(column)?;
        let threads = auto_threads(tuples.len() * m, tuples.len());
        let flat = self.realize_flat(sc, tuples, 0..m, threads);
        Ok(flat
            .chunks_exact(m)
            .map(|values| {
                let n = values.len() as f64;
                let mean = values.iter().sum::<f64>() / n;
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                (mean, var.max(0.0).sqrt())
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::vg::{Degenerate, NormalNoise};

    fn rel() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![10.0, 20.0, 30.0, 40.0])
            .stochastic("gain", NormalNoise::around(vec![1.0, 2.0, 3.0, 4.0], 0.5))
            .stochastic("other", Degenerate::new(vec![7.0, 7.0, 7.0, 7.0]))
            .build()
            .unwrap()
    }

    #[test]
    fn scenario_wise_and_tuple_wise_agree() {
        let r = rel();
        let g = ScenarioGenerator::new(123);
        let m = 16;
        let matrix = g.realize_matrix(&r, "gain", m).unwrap();
        for tuple in 0..r.len() {
            let by_tuple = g.realize_tuple(&r, "gain", tuple, 0..m).unwrap();
            for (j, v) in by_tuple.iter().enumerate() {
                assert_eq!(*v, matrix.value(j, tuple), "tuple {tuple} scenario {j}");
            }
        }
    }

    #[test]
    fn sparse_generation_matches_dense() {
        let r = rel();
        let g = ScenarioGenerator::new(5);
        let matrix = g.realize_matrix(&r, "gain", 8).unwrap();
        let sparse = g.realize_sparse(&r, "gain", &[2, 0], 0..8).unwrap();
        for (j, row) in sparse.iter().enumerate() {
            assert_eq!(row[0], matrix.value(j, 2));
            assert_eq!(row[1], matrix.value(j, 0));
        }
    }

    #[test]
    fn realize_cell_matches_column() {
        let r = rel();
        let g = ScenarioGenerator::new(11);
        let s = g.realize_column(&r, "gain", 3).unwrap();
        for i in 0..r.len() {
            assert_eq!(g.realize_cell(&r, "gain", i, 3).unwrap(), s.values[i]);
        }
        assert_eq!(s.index, 3);
    }

    #[test]
    fn different_seeds_and_streams_differ() {
        let r = rel();
        let a = ScenarioGenerator::new(1)
            .realize_column(&r, "gain", 0)
            .unwrap();
        let b = ScenarioGenerator::new(2)
            .realize_column(&r, "gain", 0)
            .unwrap();
        let c = ScenarioGenerator::validation(1)
            .realize_column(&r, "gain", 0)
            .unwrap();
        assert_ne!(a.values, b.values);
        assert_ne!(a.values, c.values);
        assert_eq!(ScenarioGenerator::new(1).base_seed(), 1);
        assert_eq!(ScenarioGenerator::new(1).stream(), Stream::Optimization);
        assert_eq!(
            ScenarioGenerator::validation(1).stream(),
            Stream::Validation
        );
    }

    #[test]
    fn degenerate_columns_are_constant_across_scenarios() {
        let r = rel();
        let g = ScenarioGenerator::new(9);
        for j in 0..5 {
            let s = g.realize_column(&r, "other", j).unwrap();
            assert_eq!(s.values, vec![7.0; 4]);
        }
    }

    #[test]
    fn matrix_means_converge_to_base() {
        let r = rel();
        let g = ScenarioGenerator::new(77);
        let matrix = g.realize_matrix(&r, "gain", 3000).unwrap();
        let means = matrix.column_means();
        for (i, m) in means.iter().enumerate() {
            let base = (i + 1) as f64;
            assert!((m - base).abs() < 0.1, "tuple {i}: mean {m} base {base}");
        }
        assert_eq!(matrix.num_scenarios(), 3000);
        assert_eq!(matrix.num_tuples(), 4);
    }

    #[test]
    fn matrix_accessors() {
        let s0 = Scenario {
            index: 0,
            values: vec![1.0, 2.0],
        };
        let s1 = Scenario {
            index: 1,
            values: vec![3.0, 4.0],
        };
        let m = ScenarioMatrix::from_scenarios(2, &[s0, s1]);
        assert_eq!(m.num_scenarios(), 2);
        assert_eq!(m.scenario(1), &[3.0, 4.0]);
        assert_eq!(m.value(0, 1), 2.0);
        assert_eq!(m.column_means(), vec![2.0, 3.0]);
        let empty = ScenarioMatrix::from_scenarios(0, &[]);
        assert_eq!(empty.num_scenarios(), 0);
        assert_eq!(empty.column_means(), Vec::<f64>::new());
    }

    #[test]
    fn parallel_generation_is_bit_identical_to_serial() {
        // A prime-sized relation so chunk boundaries land mid-relation for
        // every thread count.
        let n = 53;
        let base: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let r = RelationBuilder::new("wide")
            .stochastic("x", NormalNoise::around(base, 1.5))
            .build()
            .unwrap();
        let g = ScenarioGenerator::new(321);
        let m = 64;
        let serial = g.realize_matrix_with_threads(&r, "x", m, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let parallel = g.realize_matrix_with_threads(&r, "x", m, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // The auto-threaded public entry point agrees too.
        assert_eq!(serial, g.realize_matrix(&r, "x", m).unwrap());

        let tuples: Vec<usize> = (0..n).step_by(3).collect();
        let sparse_serial = g
            .realize_sparse_with_threads(&r, "x", &tuples, 5..40, 1)
            .unwrap();
        for threads in [2, 5, 16] {
            let sparse_parallel = g
                .realize_sparse_with_threads(&r, "x", &tuples, 5..40, threads)
                .unwrap();
            assert_eq!(sparse_serial, sparse_parallel, "threads = {threads}");
        }
        assert_eq!(
            sparse_serial,
            g.realize_sparse(&r, "x", &tuples, 5..40).unwrap()
        );
    }

    #[test]
    fn range_matrices_are_windows_of_the_full_matrix() {
        let r = rel();
        let g = ScenarioGenerator::validation(13);
        let full = g.realize_sparse_matrix(&r, "gain", &[0, 2, 3], 40).unwrap();
        for threads in [0, 1, 2, 5] {
            let window = g
                .realize_sparse_matrix_range(&r, "gain", &[0, 2, 3], 7..29, threads)
                .unwrap();
            assert_eq!(window.num_scenarios(), 22);
            assert_eq!(window.num_tuples(), 3);
            for j in 0..22 {
                assert_eq!(
                    window.scenario(j),
                    full.scenario(7 + j),
                    "threads {threads}"
                );
            }
        }
        // An empty range is a zero-scenario matrix, not an error.
        let empty = g
            .realize_sparse_matrix_range(&r, "gain", &[0, 2], 5..5, 1)
            .unwrap();
        assert_eq!(empty.num_scenarios(), 0);
    }

    #[test]
    fn tuple_moments_match_the_matrix() {
        let r = rel();
        let g = ScenarioGenerator::new(17);
        let m = 500;
        let matrix = g.realize_matrix(&r, "gain", m).unwrap();
        let moments = g.tuple_moments(&r, "gain", &[0, 2, 3], m).unwrap();
        for (k, &tuple) in [0usize, 2, 3].iter().enumerate() {
            let values: Vec<f64> = (0..m).map(|j| matrix.value(j, tuple)).collect();
            let mean = values.iter().sum::<f64>() / m as f64;
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / m as f64;
            assert!((moments[k].0 - mean).abs() < 1e-12);
            assert!((moments[k].1 - var.sqrt()).abs() < 1e-12);
        }
        // Zero scenarios degrade gracefully.
        assert_eq!(
            g.tuple_moments(&r, "gain", &[1], 0).unwrap(),
            vec![(0.0, 0.0)]
        );
        // A degenerate column has zero spread.
        let deg = g.tuple_moments(&r, "other", &[0, 1], 100).unwrap();
        assert_eq!(deg, vec![(7.0, 0.0), (7.0, 0.0)]);
    }

    #[test]
    fn unknown_column_errors() {
        let r = rel();
        let g = ScenarioGenerator::new(0);
        assert!(g.realize_column(&r, "nope", 0).is_err());
        assert!(g.realize_column(&r, "price", 0).is_err());
    }
}
