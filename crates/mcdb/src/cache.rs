//! A shared cache of realized scenario blocks.
//!
//! Scenario generation is deterministic — every `(relation, column, stream,
//! seed, tuple, scenario)` cell realizes to the same value — so concurrent
//! query evaluations over the same relation keep regenerating identical
//! matrices. [`ScenarioCache`] memoizes whole blocks: the first request for a
//! `(relation, column, stream, seed, tuple set, scenario count)` key
//! generates the matrix, every later request — from any thread — gets the
//! same `Arc<ScenarioMatrix>` back without touching the VG functions.
//!
//! Generation is serialized **per key** (a per-entry mutex), not globally:
//! two threads asking for the same block wait on one generation, while
//! requests for different blocks proceed in parallel. This is the guarantee
//! the query service relies on: eight clients issuing the same prepared
//! query never realize the same scenarios twice.
//!
//! The cache is bounded by an approximate byte budget. Blocks that would
//! push the cache past the budget are still generated and returned, just not
//! retained — correctness never depends on residency.
//!
//! ## Disk tier
//!
//! A cache can additionally be backed by a persistent
//! [`ScenarioStore`] (see
//! [`ScenarioCache::with_store`]). Memory misses then consult the store
//! before generating, and freshly generated blocks are spilled to it, so a
//! restarted process (or a cleared cache) pays block generation once per
//! store lifetime instead of once per process. The store is keyed by the
//! restart-stable [`Relation::fingerprint`] rather than the process-unique
//! [`Relation::uid`], and every file is checksummed: a corrupt or truncated
//! block is deleted and regenerated, never returned.

use crate::relation::Relation;
use crate::scenario::{ScenarioGenerator, ScenarioMatrix};
use crate::seed::Stream;
use crate::store::{ScenarioStore, StoreKey, StoreStats};
use crate::Result;
use spq_obs::metrics::{Counter, Named};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// Process-wide mirrors of the per-cache counters (all `ScenarioCache`
// instances accumulate into them) for the Prometheus snapshot.
static CACHE_HITS: Named<Counter> = Named::new("spq_scenario_cache_hits", Counter::new());
static CACHE_MISSES: Named<Counter> = Named::new("spq_scenario_cache_misses", Counter::new());
static CACHE_EVICTIONS: Named<Counter> = Named::new("spq_scenario_cache_evictions", Counter::new());

/// Identity of one realized block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockKey {
    /// [`Relation::uid`] — clones share it, rebuilt relations do not.
    relation: u64,
    /// Canonical stochastic column name.
    column: String,
    /// Optimization vs validation stream.
    stream: Stream,
    /// Base seed of the generator.
    seed: u64,
    /// FNV-1a over the candidate tuple indices (plus their count), so the
    /// key stays small even for 100k-tuple candidate sets.
    tuples_hash: u64,
    /// First scenario index of the block (0 for whole-prefix blocks; the
    /// blocked validator caches arbitrary `[start, start + scenarios)`
    /// windows).
    first_scenario: usize,
    /// Number of scenarios in the block.
    scenarios: usize,
}

fn hash_tuples(tuples: &[usize]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ (tuples.len() as u64);
    for &t in tuples {
        h ^= t as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One cache slot: a per-key mutex so concurrent misses for the same block
/// generate once, while other keys stay unblocked.
#[derive(Debug, Default)]
struct Slot {
    block: Mutex<Option<Arc<ScenarioMatrix>>>,
}

/// Accounting size of one realized block.
fn matrix_bytes(matrix: &ScenarioMatrix) -> u64 {
    (matrix.num_tuples() * matrix.num_scenarios() * 8) as u64
}

/// A thread-safe, byte-bounded cache of realized scenario blocks, shared via
/// `Arc` between all evaluations that should pool their generation work.
#[derive(Debug)]
pub struct ScenarioCache {
    slots: Mutex<HashMap<BlockKey, Arc<Slot>>>,
    max_bytes: u64,
    resident_bytes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    store: Option<Arc<ScenarioStore>>,
}

impl Default for ScenarioCache {
    fn default() -> Self {
        ScenarioCache::with_max_bytes(Self::DEFAULT_MAX_BYTES)
    }
}

impl ScenarioCache {
    /// Default residency budget: 256 MiB of realized values.
    pub const DEFAULT_MAX_BYTES: u64 = 256 << 20;

    /// A cache with the default byte budget.
    pub fn new() -> Self {
        ScenarioCache::default()
    }

    /// A cache bounded to approximately `max_bytes` of matrix data. Blocks
    /// beyond the budget are generated but not retained.
    pub fn with_max_bytes(max_bytes: u64) -> Self {
        ScenarioCache {
            slots: Mutex::new(HashMap::new()),
            max_bytes,
            resident_bytes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            store: None,
        }
    }

    /// Attach a persistent disk tier: memory misses consult `store` before
    /// generating, generated blocks are spilled to it, and a later process
    /// (or a cleared cache) reloads them instead of regenerating.
    pub fn with_store(mut self, store: Arc<ScenarioStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached disk tier, if any.
    pub fn store(&self) -> Option<&Arc<ScenarioStore>> {
        self.store.as_ref()
    }

    /// Counters of the attached disk tier (all zero when no store is
    /// attached), as surfaced in the spqd `stats` op.
    pub fn store_stats(&self) -> StoreStats {
        self.store.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// The first `m` scenarios of `column` restricted to `tuples`, drawn
    /// from `generator`'s stream and seed: cached when possible, generated
    /// (once per key, even under concurrency) otherwise.
    pub fn sparse_matrix(
        &self,
        generator: &ScenarioGenerator,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        m: usize,
    ) -> Result<Arc<ScenarioMatrix>> {
        self.sparse_matrix_range(generator, relation, column, tuples, 0..m)
    }

    /// An arbitrary scenario window of `column` restricted to `tuples`,
    /// cached like [`Self::sparse_matrix`]. The blocked validator uses this
    /// to memoize `[start, end)` windows of the validation stream.
    pub fn sparse_matrix_range(
        &self,
        generator: &ScenarioGenerator,
        relation: &Relation,
        column: &str,
        tuples: &[usize],
        scenarios: std::ops::Range<usize>,
    ) -> Result<Arc<ScenarioMatrix>> {
        // Canonicalize the column name so `gain` and `Gain` share a block;
        // this also surfaces unknown-column errors before touching the map.
        let sc = relation.stochastic_column(column)?;
        let canon = sc.name.clone();
        let column_tag = sc.tag;
        let key = BlockKey {
            relation: relation.uid(),
            column: canon.clone(),
            stream: generator.stream(),
            seed: generator.base_seed(),
            tuples_hash: hash_tuples(tuples),
            first_scenario: scenarios.start,
            scenarios: scenarios.len(),
        };
        let slot = {
            let mut slots = self.slots.lock().expect("scenario cache poisoned");
            slots.entry(key.clone()).or_default().clone()
        };
        // Per-key lock: a concurrent request for the same block waits here
        // for the single generation instead of redoing it.
        let mut block = slot.block.lock().expect("scenario slot poisoned");
        if let Some(matrix) = &*block {
            self.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HITS.inc();
            return Ok(matrix.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.inc();
        // Disk tier: a memory miss may still be a store hit — a block
        // spilled by this process, an earlier one, or a pre-`clear` epoch.
        let store_key = self.store.as_ref().map(|_| StoreKey {
            relation_fingerprint: relation.fingerprint(),
            column_tag,
            stream_tag: generator.stream().tag(),
            seed: generator.base_seed(),
            tuples_hash: key.tuples_hash,
            first_scenario: key.first_scenario as u64,
            scenarios: key.scenarios as u64,
        });
        let stored = self
            .store
            .as_ref()
            .zip(store_key.as_ref())
            .and_then(|(store, sk)| store.load(sk, tuples.len()));
        let matrix = match stored {
            Some(m) => Arc::new(m),
            None => {
                let m = Arc::new(
                    generator
                        .realize_sparse_matrix_range(relation, &canon, tuples, scenarios, 0)?,
                );
                if let Some((store, sk)) = self.store.as_ref().zip(store_key.as_ref()) {
                    store.spill(sk, &m);
                }
                m
            }
        };
        let bytes = matrix_bytes(&matrix);
        // Flush-on-full eviction: when this block would overflow the budget,
        // drop everything and admit it fresh. Old blocks regenerate
        // deterministically if asked for again, so this trades occasional
        // re-generation for a hard memory bound — in a long-running service
        // the working set is usually a handful of hot queries anyway. A
        // single block larger than the whole budget is returned unretained
        // (and its slot removed so the key map stays bounded too).
        //
        // The whole check–flush–add sequence runs under the `slots` lock:
        // admission decisions from concurrent inserts are serialized, so
        // `resident_bytes` can never drift from the map contents (two threads
        // observing overflow used to both zero the counter and then both add,
        // leaving it permanently off). Lock order is always slot → slots;
        // the lookup path above releases `slots` before taking the slot lock,
        // so the two locks are never acquired in the opposite order.
        {
            let mut slots = self.slots.lock().expect("scenario cache poisoned");
            // A concurrent flush may have evicted this key (and replaced or
            // dropped its slot) while we were generating: the block is then
            // returned unretained and never counted.
            let still_mapped = slots
                .get(&key)
                .map(|s| Arc::ptr_eq(s, &slot))
                .unwrap_or(false);
            if !still_mapped {
                return Ok(matrix);
            }
            if self.resident_bytes.load(Ordering::Relaxed) + bytes > self.max_bytes {
                let before = slots.len();
                slots.retain(|k, _| *k == key);
                let flushed = (before - slots.len()) as u64;
                if flushed > 0 {
                    self.evicted.fetch_add(flushed, Ordering::Relaxed);
                    CACHE_EVICTIONS.add(flushed);
                }
                self.resident_bytes.store(0, Ordering::Relaxed);
                if bytes > self.max_bytes {
                    slots.remove(&key);
                    return Ok(matrix);
                }
            }
            self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        *block = Some(matrix.clone());
        Ok(matrix)
    }

    /// Number of block lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of block lookups that had to generate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached blocks dropped by flush-on-full eviction (explicit
    /// [`Self::clear`] calls are not counted).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Approximate bytes of resident matrix data.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Recount the bytes of every block actually resident in the map. At
    /// quiescence this must equal [`Self::resident_bytes`]; the accounting
    /// stress test asserts exactly that after concurrent churn.
    pub fn audited_bytes(&self) -> u64 {
        // Collect the slots first, then inspect them without holding the map
        // lock: admission takes slot → slots, so holding slots while waiting
        // on a slot would invert the lock order.
        let slots: Vec<Arc<Slot>> = self
            .slots
            .lock()
            .expect("scenario cache poisoned")
            .values()
            .cloned()
            .collect();
        slots
            .iter()
            .map(|slot| {
                slot.block
                    .lock()
                    .expect("scenario slot poisoned")
                    .as_ref()
                    .map(|m| matrix_bytes(m))
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("scenario cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached block (counters keep accumulating).
    pub fn clear(&self) {
        self.slots.lock().expect("scenario cache poisoned").clear();
        self.resident_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::vg::NormalNoise;

    fn rel(n: usize) -> Relation {
        let base: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        RelationBuilder::new("t")
            .stochastic("gain", NormalNoise::around(base, 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn hit_miss_accounting_and_bit_identity() {
        let r = rel(16);
        let g = ScenarioGenerator::new(7);
        let cache = ScenarioCache::new();
        let tuples: Vec<usize> = (0..16).collect();

        let a = cache.sparse_matrix(&g, &r, "gain", &tuples, 12).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.sparse_matrix(&g, &r, "gain", &tuples, 12).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hits must share the block");

        // Cached values equal direct generation.
        let direct = g.realize_sparse_matrix(&r, "gain", &tuples, 12).unwrap();
        assert_eq!(*a, direct);

        // Column-name case does not split blocks.
        let c = cache.sparse_matrix(&g, &r, "GAIN", &tuples, 12).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn distinct_keys_are_distinct_blocks() {
        let r = rel(8);
        let r2 = rel(8);
        let g = ScenarioGenerator::new(7);
        let g2 = ScenarioGenerator::new(8);
        let val = ScenarioGenerator::validation(7);
        let cache = ScenarioCache::new();
        let tuples: Vec<usize> = (0..8).collect();

        cache.sparse_matrix(&g, &r, "gain", &tuples, 4).unwrap();
        // Different m, seed, stream, tuple set, relation -> all misses.
        cache.sparse_matrix(&g, &r, "gain", &tuples, 8).unwrap();
        cache.sparse_matrix(&g2, &r, "gain", &tuples, 4).unwrap();
        cache.sparse_matrix(&val, &r, "gain", &tuples, 4).unwrap();
        cache
            .sparse_matrix(&g, &r, "gain", &tuples[..4], 4)
            .unwrap();
        cache.sparse_matrix(&g, &r2, "gain", &tuples, 4).unwrap();
        assert_eq!(cache.misses(), 6);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 6);
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn over_budget_blocks_are_returned_but_not_retained() {
        let r = rel(32);
        let g = ScenarioGenerator::new(1);
        // Budget below one block's size.
        let cache = ScenarioCache::with_max_bytes(64);
        let tuples: Vec<usize> = (0..32).collect();
        let a = cache.sparse_matrix(&g, &r, "gain", &tuples, 10).unwrap();
        assert_eq!(a.num_scenarios(), 10);
        assert_eq!(cache.resident_bytes(), 0);
        // Second request regenerates (miss) because nothing was retained.
        let b = cache.sparse_matrix(&g, &r, "gain", &tuples, 10).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(*a, *b, "regeneration is bit-identical");
    }

    #[test]
    fn a_full_cache_flushes_and_admits_the_new_block() {
        let r = rel(16);
        let g = ScenarioGenerator::new(2);
        // Budget fits one 16×10 block (1280 bytes) but not that plus an
        // 8×10 block (640 bytes).
        let cache = ScenarioCache::with_max_bytes(1500);
        let tuples: Vec<usize> = (0..16).collect();
        cache.sparse_matrix(&g, &r, "gain", &tuples, 10).unwrap();
        assert_eq!((cache.len(), cache.resident_bytes()), (1, 1280));
        assert_eq!(cache.evicted(), 0);
        // A second block overflows: the first is flushed, the new one is
        // resident, and the map stays bounded.
        cache
            .sparse_matrix(&g, &r, "gain", &tuples[..8], 10)
            .unwrap();
        assert_eq!((cache.len(), cache.resident_bytes()), (1, 640));
        assert_eq!(cache.evicted(), 1);
        // The flushed block regenerates on demand (miss, not a hit), again
        // flushing the smaller one.
        cache.sparse_matrix(&g, &r, "gain", &tuples, 10).unwrap();
        assert_eq!((cache.len(), cache.resident_bytes()), (1, 1280));
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.evicted(), 2);
    }

    #[test]
    fn concurrent_requests_generate_each_block_once() {
        let r = rel(64);
        let g = ScenarioGenerator::new(3);
        let cache = Arc::new(ScenarioCache::new());
        let tuples: Vec<usize> = (0..64).collect();
        let reference = g.realize_sparse_matrix(&r, "gain", &tuples, 32).unwrap();

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    let r = r.clone();
                    let tuples = tuples.clone();
                    scope.spawn(move || cache.sparse_matrix(&g, &r, "gain", &tuples, 32).unwrap())
                })
                .collect();
            for handle in handles {
                assert_eq!(*handle.join().unwrap(), reference);
            }
        });
        // All eight threads asked for the same key: exactly one generation.
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn range_windows_are_cached_independently_and_match_direct_generation() {
        let r = rel(12);
        let g = ScenarioGenerator::validation(21);
        let cache = ScenarioCache::new();
        let tuples: Vec<usize> = vec![1, 4, 7];
        let a = cache
            .sparse_matrix_range(&g, &r, "gain", &tuples, 10..30)
            .unwrap();
        let direct = g
            .realize_sparse_matrix_range(&r, "gain", &tuples, 10..30, 1)
            .unwrap();
        assert_eq!(*a, direct);
        // Same window hits; a different start is a distinct block even with
        // the same length.
        let b = cache
            .sparse_matrix_range(&g, &r, "gain", &tuples, 10..30)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        cache
            .sparse_matrix_range(&g, &r, "gain", &tuples, 30..50)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        // The prefix API is the `start == 0` special case of the window API.
        let prefix = cache.sparse_matrix(&g, &r, "gain", &tuples, 20).unwrap();
        let window0 = cache
            .sparse_matrix_range(&g, &r, "gain", &tuples, 0..20)
            .unwrap();
        assert!(Arc::ptr_eq(&prefix, &window0));
    }

    #[test]
    fn accounting_survives_concurrent_churn_with_flushes() {
        // A budget small enough that concurrent inserts constantly overflow
        // it: the check–flush–add sequence must stay atomic, so after the
        // churn `resident_bytes` exactly matches a recount of the map.
        let r = rel(24);
        // 24 tuples x 10 scenarios = 1920 bytes per full block; the budget
        // fits roughly two blocks.
        let cache = Arc::new(ScenarioCache::with_max_bytes(4000));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = cache.clone();
                let r = r.clone();
                scope.spawn(move || {
                    for round in 0..40usize {
                        // Distinct (seed, tuple subset, window) keys so
                        // different threads insert different blocks and keep
                        // triggering flush-on-full.
                        let g = ScenarioGenerator::new(t * 7 + (round % 5) as u64);
                        let lo = round % 3;
                        let tuples: Vec<usize> = (lo..24).step_by(1 + (round % 4)).collect();
                        let start = (round * 3) % 17;
                        cache
                            .sparse_matrix_range(&g, &r, "gain", &tuples, start..start + 10)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(
            cache.resident_bytes(),
            cache.audited_bytes(),
            "resident accounting drifted from the map contents"
        );
        assert!(cache.resident_bytes() <= 4000);
        // The counters saw every request.
        assert_eq!(cache.hits() + cache.misses(), 8 * 40);
        // And a final flush-free sanity point: clearing zeroes both views.
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.audited_bytes(), 0);
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spq-cache-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_serves_evicted_and_cleared_blocks_without_regeneration() {
        let r = rel(16);
        let g = ScenarioGenerator::new(5);
        let dir = store_dir("reload");
        let store = Arc::new(ScenarioStore::open(&dir).unwrap());
        let cache = ScenarioCache::new().with_store(store.clone());
        let tuples: Vec<usize> = (0..16).collect();

        let a = cache.sparse_matrix(&g, &r, "gain", &tuples, 12).unwrap();
        assert_eq!(store.stats().spill_writes, 1, "miss spills to disk");
        assert_eq!(store.stats().reads, 0);

        // clear() drops the memory tier but leaves the disk tier intact:
        // the next lookup is a memory miss served by a store read.
        cache.clear();
        let b = cache.sparse_matrix(&g, &r, "gain", &tuples, 12).unwrap();
        assert_eq!(*a, *b, "store reload is bit-identical");
        assert_eq!(store.stats().reads, 1, "reload came from disk");
        assert_eq!(
            store.stats().spill_writes,
            1,
            "a store hit is not respilled"
        );
        assert_eq!(cache.store_stats(), store.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_restart_reuses_blocks_across_cache_instances_and_rebuilt_relations() {
        // Simulates a service restart: a new cache, a new store handle over
        // the same directory, and a *rebuilt* relation (new uid, same
        // fingerprint) must reload instead of regenerating.
        let dir = store_dir("restart");
        let g = ScenarioGenerator::validation(9);
        let tuples: Vec<usize> = (0..12).step_by(2).collect();

        let first = {
            let r = rel(12);
            let store = Arc::new(ScenarioStore::open(&dir).unwrap());
            let cache = ScenarioCache::new().with_store(store);
            cache
                .sparse_matrix_range(&g, &r, "gain", &tuples, 3..9)
                .unwrap()
        };

        let r2 = rel(12); // new uid, same fingerprint
        let store2 = Arc::new(ScenarioStore::open(&dir).unwrap());
        let cache2 = ScenarioCache::new().with_store(store2.clone());
        let again = cache2
            .sparse_matrix_range(&g, &r2, "gain", &tuples, 3..9)
            .unwrap();
        assert_eq!(*first, *again, "restart must see identical realizations");
        assert_eq!(
            store2.stats().reads,
            1,
            "the restarted process read from disk"
        );
        assert_eq!(store2.stats().spill_writes, 0, "nothing was regenerated");

        // A different seed is not served by the stored block.
        let other = ScenarioGenerator::validation(10);
        cache2
            .sparse_matrix_range(&other, &r2, "gain", &tuples, 3..9)
            .unwrap();
        assert_eq!(store2.stats().reads, 1);
        assert_eq!(store2.stats().spill_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_files_regenerate_with_correct_values() {
        let r = rel(8);
        let g = ScenarioGenerator::new(13);
        let dir = store_dir("corrupt");
        let store = Arc::new(ScenarioStore::open(&dir).unwrap());
        let cache = ScenarioCache::new().with_store(store.clone());
        let tuples: Vec<usize> = (0..8).collect();

        let a = cache.sparse_matrix(&g, &r, "gain", &tuples, 6).unwrap();
        // Corrupt the (single) block file on disk.
        let block_file = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "spqblk"))
            .expect("one spilled block");
        let mut bytes = std::fs::read(&block_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&block_file, &bytes).unwrap();

        cache.clear();
        let b = cache.sparse_matrix(&g, &r, "gain", &tuples, 6).unwrap();
        assert_eq!(
            *a, *b,
            "corruption must cost regeneration, never wrong data"
        );
        assert_eq!(store.stats().corrupt, 1);
        assert_eq!(store.stats().reads, 0);
        assert_eq!(store.stats().spill_writes, 2, "the block was respilled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_columns_error_without_poisoning() {
        let r = rel(4);
        let g = ScenarioGenerator::new(0);
        let cache = ScenarioCache::new();
        assert!(cache.sparse_matrix(&g, &r, "nope", &[0], 1).is_err());
        assert!(cache.sparse_matrix(&g, &r, "gain", &[0], 1).is_ok());
    }
}
