//! # spq-mcdb — Monte Carlo probabilistic database substrate
//!
//! This crate implements the Monte Carlo data model used by stochastic
//! package queries (SPQs), following the MCDB/SimSQL approach referenced by
//! the paper: uncertain attribute values are modeled as random variables
//! whose realizations are produced by *variable generation (VG) functions*.
//! A *scenario* is a deterministic realization of every random variable in a
//! relation; scenarios are mutually independent and identically distributed.
//!
//! The main types are:
//!
//! * [`Relation`] — an in-memory relation with deterministic columns
//!   ([`Value`]-typed) and stochastic columns backed by [`VgFunction`]s.
//! * [`Schema`] / [`ColumnDef`] — column metadata.
//! * [`vg`] — the VG function implementations (Gaussian, Pareto, uniform,
//!   exponential, Poisson, Student's t, geometric Brownian motion, discrete
//!   source mixtures for data-integration uncertainty).
//! * [`ScenarioGenerator`] — seeded generation of scenarios, supporting both
//!   *tuple-wise* and *scenario-wise* generation orders (Section 5.5 of the
//!   paper) that produce bit-identical realizations.
//! * [`ExpectationEstimator`] — streaming estimation of per-tuple expected
//!   values over a large out-of-sample scenario set.
//!
//! ```
//! use spq_mcdb::{RelationBuilder, vg::NormalNoise, ScenarioGenerator};
//!
//! let relation = RelationBuilder::new("sensors")
//!     .deterministic_f64("base", vec![10.0, 20.0, 30.0])
//!     .stochastic("reading", NormalNoise::around(vec![10.0, 20.0, 30.0], 1.0))
//!     .build()
//!     .unwrap();
//! let gen = ScenarioGenerator::new(42);
//! let scenario = gen.realize_column(&relation, "reading", 0).unwrap();
//! assert_eq!(scenario.values.len(), 3);
//! ```

pub mod cache;
pub mod column;
pub mod error;
pub mod expectation;
pub mod relation;
pub mod scenario;
pub mod schema;
pub mod seed;
pub mod store;
pub mod value;
pub mod vg;

pub use cache::ScenarioCache;
pub use column::{ChunkCacheStats, ColumnStorage, ColumnSummary, DiskOptions, StorageOptions};
pub use error::McdbError;
pub use expectation::ExpectationEstimator;
pub use relation::{Relation, RelationBuilder, StochasticColumn};
pub use scenario::{Scenario, ScenarioGenerator, ScenarioMatrix};
pub use schema::{ColumnDef, ColumnKind, Schema};
pub use store::{ScenarioStore, StoreStats};
pub use value::Value;
pub use vg::VgFunction;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, McdbError>;
