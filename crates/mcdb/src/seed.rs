//! Deterministic, splittable seeding of realizations.
//!
//! The paper's algorithms rely on the ability to re-generate the *same*
//! scenario on demand (e.g., tuple-wise vs. scenario-wise summarization in
//! Section 5.5 must see identical realizations, and validation uses a seed
//! that is disjoint from the optimization seed). We achieve this with a
//! counter-based scheme: the realization of stochastic column `c`, driver
//! group `g`, scenario `j` under base seed `s` is produced by an RNG seeded
//! with a strong mix of `(s, c, g, j)`. Generation order therefore never
//! affects the values.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Identifies a stream of scenarios: either the optimization stream or the
/// (disjoint) validation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Scenarios used to build SAA/CSA formulations.
    Optimization,
    /// Out-of-sample scenarios used for validation and expectation estimation.
    Validation,
}

impl Stream {
    /// Stable 64-bit domain-separation tag of the stream. Folded into every
    /// cell seed and into persistent scenario-store keys, so the two streams
    /// never share realizations on disk either.
    pub fn tag(self) -> u64 {
        match self {
            Stream::Optimization => 0x9E37_79B9_7F4A_7C15,
            Stream::Validation => 0xD1B5_4A32_D192_ED03,
        }
    }
}

/// SplitMix64 finalizer; a strong 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary number of 64-bit words into a single seed.
pub fn mix(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    for &w in words {
        acc = splitmix64(acc ^ splitmix64(w));
    }
    acc
}

/// Derive the RNG for one (column, driver-group, scenario) cell.
///
/// `column_tag` is a stable hash of the column name, `group` is the driver
/// group index (tuples that share correlated randomness share a group), and
/// `scenario` is the scenario index within the stream.
pub fn cell_rng(
    base_seed: u64,
    stream: Stream,
    column_tag: u64,
    group: u64,
    scenario: u64,
) -> SmallRng {
    let seed = mix(&[base_seed, stream.tag(), column_tag, group, scenario]);
    SmallRng::seed_from_u64(seed)
}

/// The hoisted seeding prefix shared by every cell of one `(base seed,
/// stream, column)` triple: the state of the [`mix`] fold after its first
/// three words.
///
/// The columnar block kernels hoist this out of their inner loops so each
/// cell pays two SplitMix rounds ([`group_seed`] is hoisted per tuple,
/// [`cell_seed`] runs per scenario) instead of the ten a full five-word
/// [`mix`] costs. Folding the remaining words through [`group_seed`] and
/// [`cell_seed`] reproduces `mix(&[base_seed, stream, column, group,
/// scenario])` bit-exactly, which is what keeps the block kernels
/// bit-identical to [`cell_rng`].
#[inline]
pub fn column_prefix(base_seed: u64, stream: Stream, column_tag: u64) -> u64 {
    mix(&[base_seed, stream.tag(), column_tag])
}

/// Fold a driver-group index into a [`column_prefix`]. Hoisted per tuple by
/// the block kernels.
#[inline]
pub fn group_seed(column_prefix: u64, group: u64) -> u64 {
    splitmix64(column_prefix ^ splitmix64(group))
}

/// Fold a scenario index into a [`group_seed`], completing the counter-based
/// cell key. `SmallRng::seed_from_u64(cell_seed(..))` is the same generator
/// [`cell_rng`] returns.
#[inline]
pub fn cell_seed(group_seed: u64, scenario: u64) -> u64 {
    splitmix64(group_seed ^ splitmix64(scenario))
}

/// The RNG used to derive per-tuple *construction-time* randomness (e.g.
/// [`crate::vg::DiscreteSources::sample_around`] fixing its candidate source
/// values): the shared counter-based scheme applied to `(base_seed, tuple)`.
///
/// Every seeding decision in the crate routes through [`mix`]; this helper
/// names the two-word tuple-stream case so callers do not hand-roll their
/// own folds.
#[inline]
pub fn tuple_rng(base_seed: u64, tuple: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix(&[base_seed, tuple]))
}

/// Stable 64-bit tag for a column name.
pub fn column_tag(name: &str) -> u64 {
    // FNV-1a over the bytes, then a SplitMix finalizer for avalanche.
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn mix_depends_on_every_word() {
        let a = mix(&[1, 2, 3]);
        assert_ne!(a, mix(&[1, 2, 4]));
        assert_ne!(a, mix(&[0, 2, 3]));
        assert_ne!(a, mix(&[1, 2]));
        assert_eq!(a, mix(&[1, 2, 3]));
    }

    #[test]
    fn streams_are_disjoint() {
        let mut a = cell_rng(7, Stream::Optimization, 1, 2, 3);
        let mut b = cell_rng(7, Stream::Validation, 1, 2, 3);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn cell_rng_is_reproducible() {
        let mut a = cell_rng(11, Stream::Optimization, 5, 0, 9);
        let mut b = cell_rng(11, Stream::Optimization, 5, 0, 9);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn hoisted_prefixes_reproduce_the_full_mix() {
        // The block kernels rely on column_prefix → group_seed → cell_seed
        // replaying mix(&[s, stream, c, g, j]) exactly.
        for (s, c, g, j) in [
            (0u64, 0u64, 0u64, 0u64),
            (7, 3, 12, 99),
            (u64::MAX, 1, 2, 3),
        ] {
            for stream in [Stream::Optimization, Stream::Validation] {
                let full = mix(&[s, stream.tag(), c, g, j]);
                let hoisted = cell_seed(group_seed(column_prefix(s, stream, c), g), j);
                assert_eq!(full, hoisted);
                let mut a = cell_rng(s, stream, c, g, j);
                let mut b = SmallRng::seed_from_u64(hoisted);
                for _ in 0..4 {
                    assert_eq!(a.gen::<u64>(), b.gen::<u64>());
                }
            }
        }
    }

    #[test]
    fn tuple_rng_matches_the_two_word_mix() {
        let mut a = tuple_rng(42, 7);
        let mut b = SmallRng::seed_from_u64(mix(&[42, 7]));
        for _ in 0..4 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn column_tags_differ_for_different_names() {
        assert_ne!(column_tag("gain"), column_tag("price"));
        assert_eq!(column_tag("gain"), column_tag("gain"));
    }
}
