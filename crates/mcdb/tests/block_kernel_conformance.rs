//! Columnar block-kernel conformance suite.
//!
//! Every VG family overrides [`spq_mcdb::VgFunction::realize_block`] with a
//! hoisted columnar kernel; the per-cell `realize` path driven by
//! [`spq_mcdb::seed::cell_rng`] stays the conformance oracle. This suite
//! pins the contract the scenario engine is built on: for **every** family,
//! at **every** tile split and thread count, the block path is bit-identical
//! to the per-cell path — same seeds, same draws, same `f64` bits.
//!
//! The corpus deliberately includes the families' degenerate edges: zero
//! sigma tuples (no RNG consumed), inverted uniform bounds, single-candidate
//! discrete sources (one draw still consumed), shared GBM driver groups,
//! small and large Poisson rates (the sampler switches algorithms around
//! `lambda = 30`).

use proptest::prelude::*;
use spq_mcdb::seed::{column_prefix, Stream};
use spq_mcdb::vg::{
    Degenerate, DiscreteSources, ExponentialNoise, GeometricBrownianMotion, NormalNoise,
    ParetoNoise, PoissonNoise, SourceDispersion, StudentTNoise, UniformNoise,
};
use spq_mcdb::{Relation, RelationBuilder, ScenarioGenerator};

const N: usize = 13;

fn base() -> Vec<f64> {
    (0..N).map(|i| (i as f64) * 1.5 - 3.0).collect()
}

/// One relation per VG family, edge cases included.
fn family_corpus() -> Vec<(&'static str, Relation)> {
    let mut sigma: Vec<f64> = (0..N).map(|i| 0.25 * i as f64).collect();
    sigma[0] = 0.0; // zero-sigma tuple: must not consume RNG
    sigma[7] = 0.0;
    let gbm_n = N;
    let price: Vec<f64> = (0..gbm_n).map(|i| 50.0 + 5.0 * i as f64).collect();
    let mu: Vec<f64> = (0..gbm_n).map(|i| 0.0005 * (i % 4) as f64).collect();
    let gbm_sigma: Vec<f64> = (0..gbm_n).map(|i| 0.01 + 0.002 * (i % 4) as f64).collect();
    let horizon: Vec<u32> = (0..gbm_n).map(|i| 1 + (i % 5) as u32).collect();
    // Shared driver groups: tuples of one stock share a path.
    let group: Vec<u64> = (0..gbm_n).map(|i| (i % 4) as u64).collect();
    let mut candidates: Vec<Vec<f64>> = (0..N)
        .map(|i| {
            (0..(1 + i % 4))
                .map(|d| i as f64 + 0.1 * d as f64)
                .collect()
        })
        .collect();
    candidates[3] = vec![42.0]; // single candidate: one draw still consumed

    vec![
        (
            "degenerate",
            RelationBuilder::new("deg")
                .stochastic("x", Degenerate::new(base()))
                .build()
                .unwrap(),
        ),
        (
            "normal",
            RelationBuilder::new("nrm")
                .stochastic("x", NormalNoise::around(base(), sigma))
                .build()
                .unwrap(),
        ),
        (
            "pareto",
            RelationBuilder::new("par")
                .stochastic("x", ParetoNoise::around(base(), 1.5, 2.5))
                .build()
                .unwrap(),
        ),
        (
            "uniform",
            RelationBuilder::new("uni")
                .stochastic("x", UniformNoise::around(base(), -0.5, 1.25))
                .build()
                .unwrap(),
        ),
        (
            "uniform-degenerate",
            RelationBuilder::new("unid")
                .stochastic("x", UniformNoise::around(base(), 2.0, 2.0))
                .build()
                .unwrap(),
        ),
        (
            "exponential",
            RelationBuilder::new("exp")
                .stochastic("x", ExponentialNoise::around(base(), 1.75))
                .build()
                .unwrap(),
        ),
        (
            "poisson-small",
            RelationBuilder::new("poi")
                .stochastic("x", PoissonNoise::around(base(), 3.0))
                .build()
                .unwrap(),
        ),
        (
            "poisson-large",
            RelationBuilder::new("poib")
                .stochastic("x", PoissonNoise::around(base(), 40.0))
                .build()
                .unwrap(),
        ),
        (
            "student-t",
            RelationBuilder::new("stu")
                .stochastic("x", StudentTNoise::around(base(), 4.0, 0.8))
                .build()
                .unwrap(),
        ),
        (
            "gbm",
            RelationBuilder::new("gbm")
                .stochastic(
                    "x",
                    GeometricBrownianMotion::new(price, mu, gbm_sigma, horizon, group),
                )
                .build()
                .unwrap(),
        ),
        (
            "discrete-sources",
            RelationBuilder::new("dsc")
                .stochastic("x", DiscreteSources::from_candidates(candidates).unwrap())
                .build()
                .unwrap(),
        ),
        (
            "discrete-sampled",
            RelationBuilder::new("dss")
                .stochastic(
                    "x",
                    DiscreteSources::sample_around(
                        base(),
                        3,
                        SourceDispersion::Uniform { lo: -1.0, hi: 1.0 },
                        77,
                    )
                    .unwrap(),
                )
                .build()
                .unwrap(),
        ),
    ]
}

/// The per-cell oracle: tuple-major realization via `realize_cell`, which
/// seeds every cell with the full five-word counter-based mix.
fn oracle(
    gen: &ScenarioGenerator,
    relation: &Relation,
    tuples: &[usize],
    scenarios: std::ops::Range<usize>,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(tuples.len() * scenarios.len());
    for &t in tuples {
        for j in scenarios.clone() {
            out.push(gen.realize_cell(relation, "x", t, j).unwrap());
        }
    }
    out
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: cell {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn every_family_matches_the_per_cell_oracle_at_every_thread_count() {
    let tuples: Vec<usize> = (0..N).rev().collect(); // non-monotone order too
    for (name, relation) in family_corpus() {
        for gen in [
            ScenarioGenerator::new(11),
            ScenarioGenerator::validation(11),
        ] {
            let expected = oracle(&gen, &relation, &tuples, 2..18);
            for threads in [1usize, 2, 3, 8] {
                let matrix = gen
                    .realize_sparse_matrix_range(&relation, "x", &tuples, 2..18, threads)
                    .unwrap();
                let mut got = Vec::with_capacity(expected.len());
                for (i, _) in tuples.iter().enumerate() {
                    for j in 0..16 {
                        got.push(matrix.value(j, i));
                    }
                }
                assert_bits_eq(&expected, &got, &format!("{name} threads={threads}"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary scenario windows, tuple subsets, thread counts, and seeds:
    /// the generator path equals the per-cell oracle for every family.
    #[test]
    fn generator_path_is_bit_identical_for_arbitrary_windows(
        seed in 0u64..1_000,
        start in 0usize..64,
        m in 1usize..24,
        threads in 1usize..9,
        picks in proptest::collection::vec(0usize..N, 1..10),
    ) {
        for (name, relation) in family_corpus() {
            let gen = ScenarioGenerator::new(seed);
            let expected = oracle(&gen, &relation, &picks, start..start + m);
            let matrix = gen
                .realize_sparse_matrix_range(&relation, "x", &picks, start..start + m, threads)
                .unwrap();
            let mut got = Vec::with_capacity(expected.len());
            for (i, _) in picks.iter().enumerate() {
                for j in 0..m {
                    got.push(matrix.value(j, i));
                }
            }
            assert_bits_eq(&expected, &got, &format!("{name} seed={seed} threads={threads}"));
        }
    }

    /// Direct `realize_block` calls at arbitrary tile splits: slicing the
    /// tuple set anywhere and realizing each slice independently yields the
    /// same bits as one whole-block call and as the per-cell oracle.
    #[test]
    fn realize_block_is_split_invariant(
        seed in 0u64..1_000,
        start in 0usize..32,
        m in 1usize..16,
        split_a in 1usize..N,
        split_b in 1usize..N,
    ) {
        let (lo, hi) = (split_a.min(split_b), split_a.max(split_b));
        let tuples: Vec<usize> = (0..N).collect();
        for (name, relation) in family_corpus() {
            let sc = relation.stochastic_column("x").unwrap();
            let prefix = column_prefix(seed, Stream::Optimization, sc.tag);
            let gen = ScenarioGenerator::new(seed);
            let expected = oracle(&gen, &relation, &tuples, start..start + m);

            let mut whole = vec![0.0f64; N * m];
            sc.vg.realize_block(prefix, &tuples, start..start + m, &mut whole);
            assert_bits_eq(&expected, &whole, &format!("{name} whole-block"));

            let mut split = vec![0.0f64; N * m];
            {
                let (first, rest) = split.split_at_mut(lo * m);
                let (second, third) = rest.split_at_mut((hi - lo) * m);
                sc.vg.realize_block(prefix, &tuples[..lo], start..start + m, first);
                if hi > lo {
                    sc.vg.realize_block(prefix, &tuples[lo..hi], start..start + m, second);
                }
                if hi < N {
                    sc.vg.realize_block(prefix, &tuples[hi..], start..start + m, third);
                }
            }
            assert_bits_eq(&expected, &split, &format!("{name} split at {lo}/{hi}"));
        }
    }
}
