//! Conformance suite for the out-of-core columnar tier.
//!
//! The contract under test: a disk-backed relation is **bit-identical** to
//! its all-memory twin — same fingerprint, same deterministic values, same
//! realized scenario matrices — for every chunk size and every worker count,
//! and chunk-file corruption is detected, reported, and survivable
//! (delete-and-rebuild), never a panic and never silently wrong data.

use spq_mcdb::vg::{GeometricBrownianMotion, NormalNoise};
use spq_mcdb::{McdbError, Relation, RelationBuilder, ScenarioGenerator, StorageOptions, Value};
use std::path::{Path, PathBuf};

/// A mixed-type relation: int ids, text labels, float prices, two stochastic
/// columns (one analytic GBM, one Monte-Carlo normal).
fn build_relation(n: usize, storage: StorageOptions) -> Relation {
    let mut builder = RelationBuilder::new("conformance")
        .storage(storage)
        .spill_threshold(257)
        .declare_deterministic("id")
        .declare_deterministic("label")
        .declare_deterministic("price");
    let mut prices = Vec::with_capacity(n);
    let mut volatilities = Vec::with_capacity(n);
    for i in 0..n {
        let price = 40.0 + (i % 97) as f64 * 1.25;
        prices.push(price);
        volatilities.push(0.1 + (i % 11) as f64 * 0.03);
        builder = builder.append_row(vec![
            Value::Int(i as i64),
            Value::Text(format!("T{:05}", i % 301)),
            Value::Float(price),
        ]);
    }
    let drifts = vec![0.05; n];
    let horizons = vec![5u32; n];
    let groups: Vec<u64> = (0..n as u64).collect();
    let means: Vec<f64> = prices.iter().map(|p| p * 0.02).collect();
    let sds: Vec<f64> = prices.iter().map(|p| p * 0.01 + 0.5).collect();
    builder
        .stochastic(
            "gain",
            GeometricBrownianMotion::new(prices.clone(), drifts, volatilities, horizons, groups),
        )
        .stochastic("noise", NormalNoise::around(means, sds))
        .build()
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spq-conform-{}-{tag}", std::process::id()))
}

/// Every observable surface of `disk` must equal `mem`'s: fingerprint,
/// deterministic columns (typed and `Value`-level), and scenario matrices
/// realized with 1 and 8 workers on both streams.
fn assert_bit_identical(mem: &Relation, disk: &Relation, context: &str) {
    assert_eq!(disk.len(), mem.len(), "{context}: length");
    assert_eq!(
        disk.fingerprint(),
        mem.fingerprint(),
        "{context}: fingerprint"
    );
    assert_eq!(
        disk.deterministic_f64("price").unwrap(),
        mem.deterministic_f64("price").unwrap(),
        "{context}: price column"
    );
    let all: Vec<usize> = (0..mem.len()).collect();
    assert_eq!(
        disk.gather_values("label", &all).unwrap(),
        mem.gather_values("label", &all).unwrap(),
        "{context}: label column"
    );
    for row in [0, 1, mem.len() / 2, mem.len() - 1] {
        assert_eq!(
            disk.value("id", row).unwrap(),
            mem.value("id", row).unwrap(),
            "{context}: id row {row}"
        );
    }
    for column in ["gain", "noise"] {
        for generator in [
            ScenarioGenerator::new(42),
            ScenarioGenerator::validation(42),
        ] {
            let reference = generator
                .realize_matrix_with_threads(mem, column, 24, 1)
                .unwrap();
            for threads in [1, 8] {
                let realized = generator
                    .realize_matrix_with_threads(disk, column, 24, threads)
                    .unwrap();
                assert_eq!(
                    realized.raw_data(),
                    reference.raw_data(),
                    "{context}: {column} scenarios with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn disk_tier_is_bit_identical_across_chunk_sizes_and_threads() {
    const N: usize = 3000;
    let mem = build_relation(N, StorageOptions::memory());
    assert_eq!(mem.storage_kind(), "memory");
    // 1k chunks page the 3k-row columns through several files; 64k chunks
    // hold each column whole. Both must reproduce the memory tier exactly.
    for chunk_rows in [1_000, 65_536] {
        let dir = temp_dir(&format!("chunks-{chunk_rows}"));
        let disk = build_relation(N, StorageOptions::disk(&dir).chunk_rows(chunk_rows));
        assert_eq!(disk.storage_kind(), "disk");
        assert!(disk.disk_bytes() > 0);
        assert_bit_identical(&mem, &disk, &format!("chunk_rows={chunk_rows}"));

        // A starved cache (evicting constantly) still returns exact data.
        disk.clamp_cache_budget(1);
        assert_bit_identical(&mem, &disk, &format!("chunk_rows={chunk_rows} starved"));
        let stats = disk.chunk_cache_stats().unwrap();
        assert!(stats.misses > 0, "starved cache must fault chunks in");

        drop(disk);
        assert_eq!(count_chunk_files(&dir), 0, "chunks must vanish on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn chunk_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spqcol"))
        .collect();
    files.sort();
    files
}

fn count_chunk_files(dir: &Path) -> usize {
    chunk_files(dir).len()
}

#[test]
fn corrupt_chunks_error_cleanly_and_rebuild_restores_identity() {
    const N: usize = 2000;
    let dir = temp_dir("corrupt");
    let mem = build_relation(N, StorageOptions::memory());
    let disk = build_relation(N, StorageOptions::disk(&dir).chunk_rows(256));
    assert_bit_identical(&mem, &disk, "before corruption");

    // Flip payload bytes in every chunk file on disk.
    let files = chunk_files(&dir);
    assert!(files.len() > 1, "expected several chunk files");
    for path in &files {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(path, bytes).unwrap();
    }

    // Cached chunks still answer; force re-reads to hit the bad files.
    disk.invalidate_chunk_cache();
    let err = disk.deterministic_f64("price").unwrap_err();
    assert!(
        matches!(err, McdbError::ChunkCorrupt { .. }),
        "corruption must surface as ChunkCorrupt, got: {err}"
    );
    let message = err.to_string();
    assert!(
        message.contains("price") || message.contains(".spqcol"),
        "error must name the culprit: {message}"
    );
    // The verifier deletes bad files as it finds them — at least the one it
    // tripped on is gone.
    assert!(count_chunk_files(&dir) < files.len());

    // Rebuild in place: the builder is deterministic, so re-running it into
    // the same directory rewrites the same chunk paths (temp-file + rename).
    // `keep_files` stops the rebuild handle from deleting them on drop.
    let rebuilt = build_relation(N, StorageOptions::disk(&dir).chunk_rows(256).keep_files());
    drop(rebuilt);
    disk.invalidate_chunk_cache();
    assert_bit_identical(&mem, &disk, "after rebuild");

    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_chunk_is_reported_not_panicked() {
    const N: usize = 600;
    let dir = temp_dir("truncate");
    let disk = build_relation(N, StorageOptions::disk(&dir).chunk_rows(128));
    let files = chunk_files(&dir);
    // Truncate one file below its header.
    std::fs::write(&files[0], b"SPQ").unwrap();
    disk.invalidate_chunk_cache();
    let all: Vec<usize> = (0..N).collect();
    let mut saw_corrupt = false;
    for column in ["id", "label", "price"] {
        if let Err(e) = disk.gather_values(column, &all) {
            assert!(matches!(e, McdbError::ChunkCorrupt { .. }), "{e}");
            saw_corrupt = true;
        }
    }
    assert!(saw_corrupt, "a truncated chunk must surface an error");
    drop(disk);
    let _ = std::fs::remove_dir_all(&dir);
}
