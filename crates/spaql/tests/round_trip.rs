//! Display/parse round-trips over the paper's clause inventory (Appendix A,
//! Figure 8). For every query shape the engine supports, parsing the printed
//! form of a parsed query must reproduce the same AST, and printing must be
//! a fixpoint — so the printer and the parser cannot drift apart.

use spq_spaql::parse;

fn assert_round_trip(text: &str) {
    let parsed = parse(text).unwrap_or_else(|e| panic!("parse failed for {text:?}: {e}"));
    let printed = parsed.to_string();
    let reparsed =
        parse(&printed).unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
    assert_eq!(parsed, reparsed, "AST drift for {text:?} via {printed:?}");
    assert_eq!(
        printed,
        reparsed.to_string(),
        "printer is not a fixpoint for {text:?}"
    );
}

/// The paper's Figure 1 portfolio query: probabilistic `WITH PROBABILITY`
/// constraint plus a `MAXIMIZE EXPECTED SUM` objective.
#[test]
fn figure_1_probability_constraint_and_expected_sum_objective() {
    assert_round_trip(
        "SELECT PACKAGE(*) AS Portfolio FROM Stock_Investments \
         SUCH THAT SUM(price) <= 1000 AND \
         SUM(Gain) >= -10 WITH PROBABILITY >= 0.95 \
         MAXIMIZE EXPECTED SUM(Gain)",
    );
}

#[test]
fn minimize_expected_sum_objective() {
    assert_round_trip(
        "SELECT PACKAGE(*) FROM Galaxy SUCH THAT \
         COUNT(*) BETWEEN 5 AND 10 AND \
         SUM(Petromag_r) >= 40 WITH PROBABILITY >= 0.9 \
         MINIMIZE EXPECTED SUM(Petromag_r)",
    );
}

#[test]
fn probability_upper_bound_constraint() {
    // VaR-style: the loss event must be *rare*.
    assert_round_trip(
        "SELECT PACKAGE(*) FROM trades SUCH THAT \
         SUM(gain) <= -100 WITH PROBABILITY <= 0.05 \
         MAXIMIZE EXPECTED SUM(gain)",
    );
}

#[test]
fn probability_of_objective() {
    assert_round_trip(
        "SELECT PACKAGE(*) FROM Tpch_3 SUCH THAT \
         COUNT(*) BETWEEN 1 AND 10 AND \
         SUM(Quantity) <= 15 WITH PROBABILITY >= 0.9 \
         MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000",
    );
}

#[test]
fn expected_constraint_without_probability() {
    assert_round_trip(
        "SELECT PACKAGE(*) FROM trades SUCH THAT \
         EXPECTED SUM(gain) >= 5 AND COUNT(*) <= 3 \
         MINIMIZE COUNT(*)",
    );
}

#[test]
fn where_and_repeat_clauses() {
    assert_round_trip(
        "SELECT PACKAGE(*) FROM trades REPEAT 2 \
         WHERE sell_in = '1 day' AND price <= 500 \
         SUCH THAT SUM(price) <= 1000 AND \
         SUM(gain) >= 0 WITH PROBABILITY >= 0.5 \
         MAXIMIZE EXPECTED SUM(gain)",
    );
}

#[test]
fn bare_package_query_round_trips() {
    assert_round_trip("SELECT PACKAGE(*) FROM t");
}

#[test]
fn multiple_probabilistic_constraints() {
    let text = "SELECT PACKAGE(*) FROM r SUCH THAT \
                SUM(a) >= 1 WITH PROBABILITY >= 0.8 AND \
                SUM(b) <= 9 WITH PROBABILITY >= 0.7 \
                MAXIMIZE EXPECTED SUM(a)";
    assert_round_trip(text);
    let parsed = parse(text).unwrap();
    assert_eq!(parsed.num_probabilistic_constraints(), 2);
}
