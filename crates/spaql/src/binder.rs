//! Semantic analysis: binding a parsed query against a relation schema.

use crate::ast::{AggExpr, ConstraintExpr, ObjectiveExpr, PackageQuery, PredicateValue};
use crate::error::SpaqlError;
use crate::token::CompareOp;
use crate::Result;
use spq_mcdb::{Relation, Value};

/// A query that has been validated against a relation: every referenced
/// attribute exists and is used in a way consistent with its kind
/// (deterministic vs. stochastic), probability bounds are in range, and the
/// tuple-level `WHERE` clause has been evaluated to the set of candidate
/// tuple indices.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The validated query (attribute names canonicalized to schema casing).
    pub query: PackageQuery,
    /// Indices of tuples that satisfy the `WHERE` clause (all tuples when the
    /// clause is absent).
    pub candidate_tuples: Vec<usize>,
}

/// Bind and validate a parsed query against a relation.
pub fn bind(query: &PackageQuery, relation: &Relation) -> Result<BoundQuery> {
    let mut query = query.clone();

    // --- Canonicalize and validate attribute references. ------------------
    let canonicalize = |attr: &str| -> Result<String> {
        relation
            .schema()
            .column(attr)
            .map(|c| c.name.clone())
            .ok_or_else(|| SpaqlError::UnknownAttribute(attr.to_string()))
    };
    let require_stochastic = |attr: &str, context: &str| -> Result<()> {
        if relation.is_stochastic(attr) {
            Ok(())
        } else {
            Err(SpaqlError::AttributeKindMismatch {
                attribute: attr.to_string(),
                message: format!("{context} requires a stochastic attribute"),
            })
        }
    };
    let require_deterministic = |attr: &str, context: &str| -> Result<()> {
        if relation.is_stochastic(attr) {
            Err(SpaqlError::AttributeKindMismatch {
                attribute: attr.to_string(),
                message: format!(
                    "{context} requires a deterministic attribute; use EXPECTED or WITH PROBABILITY for stochastic attributes"
                ),
            })
        } else {
            Ok(())
        }
    };
    let check_probability = |p: f64| -> Result<()> {
        if p <= 0.0 || p >= 1.0 {
            Err(SpaqlError::InvalidProbability(p))
        } else {
            Ok(())
        }
    };

    for c in &mut query.constraints {
        match c {
            ConstraintExpr::Deterministic { agg, .. } | ConstraintExpr::Between { agg, .. } => {
                if let AggExpr::Sum { attribute } = agg {
                    *attribute = canonicalize(attribute)?;
                    require_deterministic(attribute, "a deterministic SUM constraint")?;
                }
            }
            ConstraintExpr::Expected { agg, .. } => {
                if let AggExpr::Sum { attribute } = agg {
                    *attribute = canonicalize(attribute)?;
                    // EXPECTED over a deterministic attribute is allowed: the
                    // expectation of a constant is the constant itself.
                } else {
                    return Err(SpaqlError::Semantic(
                        "EXPECTED COUNT(*) is equivalent to COUNT(*); write COUNT(*)".into(),
                    ));
                }
            }
            ConstraintExpr::Probabilistic {
                agg,
                probability,
                prob_op,
                ..
            } => {
                check_probability(*probability)?;
                if *prob_op == CompareOp::Eq {
                    return Err(SpaqlError::Semantic(
                        "WITH PROBABILITY requires >= or <=".into(),
                    ));
                }
                if let AggExpr::Sum { attribute } = agg {
                    *attribute = canonicalize(attribute)?;
                    require_stochastic(attribute, "a probabilistic constraint")?;
                } else {
                    return Err(SpaqlError::Semantic(
                        "probabilistic COUNT(*) constraints are not supported".into(),
                    ));
                }
            }
        }
    }

    if let Some(obj) = &mut query.objective {
        match &mut obj.expr {
            ObjectiveExpr::ExpectedSum { attribute } => {
                *attribute = canonicalize(attribute)?;
            }
            ObjectiveExpr::Sum { attribute } => {
                *attribute = canonicalize(attribute)?;
                require_deterministic(attribute, "a deterministic SUM objective")?;
            }
            ObjectiveExpr::ProbabilityOf { attribute, .. } => {
                *attribute = canonicalize(attribute)?;
                require_stochastic(attribute, "a PROBABILITY OF objective")?;
            }
            ObjectiveExpr::Count => {}
        }
    }

    if query.constraints.is_empty() && query.objective.is_none() {
        return Err(SpaqlError::Semantic(
            "the query has neither constraints nor an objective".into(),
        ));
    }

    // --- Evaluate the WHERE clause. ----------------------------------------
    let mut candidate_tuples: Vec<usize> = (0..relation.len()).collect();
    if let Some(w) = &mut query.where_clause {
        for pred in &mut w.conjuncts {
            pred.attribute = canonicalize(&pred.attribute)?;
            require_deterministic(&pred.attribute, "a WHERE predicate")?;
        }
        candidate_tuples.retain(|&i| {
            w.conjuncts.iter().all(|pred| {
                let value = relation
                    .value(&pred.attribute, i)
                    .expect("attribute validated above");
                predicate_holds(&value, pred.op, &pred.value)
            })
        });
    }

    Ok(BoundQuery {
        query,
        candidate_tuples,
    })
}

fn predicate_holds(value: &Value, op: CompareOp, literal: &PredicateValue) -> bool {
    match literal {
        PredicateValue::Number(rhs) => match value.as_f64() {
            Some(lhs) => compare_f64(lhs, op, *rhs),
            None => false,
        },
        PredicateValue::Text(rhs) => match value.as_str() {
            Some(lhs) => match op {
                CompareOp::Eq => lhs == rhs,
                CompareOp::Ne => lhs != rhs,
                CompareOp::Le => lhs <= rhs.as_str(),
                CompareOp::Ge => lhs >= rhs.as_str(),
                CompareOp::Lt => lhs < rhs.as_str(),
                CompareOp::Gt => lhs > rhs.as_str(),
            },
            None => false,
        },
    }
}

fn compare_f64(lhs: f64, op: CompareOp, rhs: f64) -> bool {
    match op {
        CompareOp::Le => lhs <= rhs,
        CompareOp::Ge => lhs >= rhs,
        CompareOp::Eq => (lhs - rhs).abs() < 1e-12,
        CompareOp::Ne => (lhs - rhs).abs() >= 1e-12,
        CompareOp::Lt => lhs < rhs,
        CompareOp::Gt => lhs > rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;

    fn relation() -> Relation {
        RelationBuilder::new("stock_investments")
            .deterministic_i64("id", vec![1, 2, 3, 4])
            .deterministic_text("sell_in", vec!["1 day", "1 week", "1 day", "1 week"])
            .deterministic_f64("price", vec![234.0, 234.0, 140.0, 140.0])
            .stochastic("Gain", NormalNoise::around(vec![0.0; 4], 1.0))
            .build()
            .unwrap()
    }

    #[test]
    fn binds_the_figure_1_query_and_canonicalizes_names() {
        let q = parse(
            "SELECT PACKAGE(*) FROM Stock_Investments SUCH THAT \
             SUM(PRICE) <= 1000 AND SUM(gain) >= -10 WITH PROBABILITY >= 0.95 \
             MAXIMIZE EXPECTED SUM(gain)",
        )
        .unwrap();
        let bound = bind(&q, &relation()).unwrap();
        // Attribute names take the schema casing.
        match &bound.query.constraints[0] {
            ConstraintExpr::Deterministic { agg, .. } => {
                assert_eq!(agg.attribute(), Some("price"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &bound.query.constraints[1] {
            ConstraintExpr::Probabilistic { agg, .. } => {
                assert_eq!(agg.attribute(), Some("Gain"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(bound.candidate_tuples, vec![0, 1, 2, 3]);
    }

    #[test]
    fn where_clause_filters_candidate_tuples() {
        let q = parse(
            "SELECT PACKAGE(*) FROM t WHERE sell_in = '1 day' AND price <= 200 \
             SUCH THAT COUNT(*) <= 2 MAXIMIZE EXPECTED SUM(Gain)",
        )
        .unwrap();
        let bound = bind(&q, &relation()).unwrap();
        assert_eq!(bound.candidate_tuples, vec![2]);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let q = parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(missing) <= 1").unwrap();
        assert_eq!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::UnknownAttribute("missing".into())
        );
    }

    #[test]
    fn deterministic_sum_over_stochastic_attribute_is_rejected() {
        let q = parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(Gain) <= 1").unwrap();
        assert!(matches!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::AttributeKindMismatch { .. }
        ));
    }

    #[test]
    fn probabilistic_constraint_over_deterministic_attribute_is_rejected() {
        let q = parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) <= 1 WITH PROBABILITY >= 0.9")
            .unwrap();
        assert!(matches!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::AttributeKindMismatch { .. }
        ));
    }

    #[test]
    fn probability_bounds_are_validated() {
        for p in ["0", "1", "1.5"] {
            let q = parse(&format!(
                "SELECT PACKAGE(*) FROM t SUCH THAT SUM(Gain) >= 0 WITH PROBABILITY >= {p}"
            ))
            .unwrap();
            assert!(matches!(
                bind(&q, &relation()).unwrap_err(),
                SpaqlError::InvalidProbability(_)
            ));
        }
    }

    #[test]
    fn empty_query_is_rejected() {
        let q = parse("SELECT PACKAGE(*) FROM t").unwrap();
        assert!(matches!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::Semantic(_)
        ));
    }

    #[test]
    fn where_on_stochastic_attribute_is_rejected() {
        let q = parse("SELECT PACKAGE(*) FROM t WHERE Gain >= 0 SUCH THAT COUNT(*) <= 2").unwrap();
        assert!(matches!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::AttributeKindMismatch { .. }
        ));
    }

    #[test]
    fn expected_constraint_on_deterministic_attribute_is_allowed() {
        let q = parse("SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(price) <= 500").unwrap();
        assert!(bind(&q, &relation()).is_ok());
    }

    #[test]
    fn probability_objective_requires_stochastic_attribute() {
        let q =
            parse("SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF SUM(price) >= 100").unwrap();
        assert!(matches!(
            bind(&q, &relation()).unwrap_err(),
            SpaqlError::AttributeKindMismatch { .. }
        ));
        let ok = parse("SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF SUM(Gain) >= 0").unwrap();
        assert!(bind(&ok, &relation()).is_ok());
    }

    #[test]
    fn text_predicates_support_inequality() {
        let q = parse("SELECT PACKAGE(*) FROM t WHERE sell_in <> '1 day' SUCH THAT COUNT(*) <= 2")
            .unwrap();
        let bound = bind(&q, &relation()).unwrap();
        assert_eq!(bound.candidate_tuples, vec![1, 3]);
    }

    #[test]
    fn numeric_predicate_operators() {
        assert!(compare_f64(1.0, CompareOp::Lt, 2.0));
        assert!(compare_f64(2.0, CompareOp::Gt, 1.0));
        assert!(compare_f64(2.0, CompareOp::Ne, 1.0));
        assert!(compare_f64(1.0, CompareOp::Eq, 1.0));
        assert!(!predicate_holds(
            &Value::Text("x".into()),
            CompareOp::Le,
            &PredicateValue::Number(1.0)
        ));
        assert!(!predicate_holds(
            &Value::Int(1),
            CompareOp::Eq,
            &PredicateValue::Text("x".into())
        ));
    }
}
