//! Abstract syntax tree for sPaQL queries.
//!
//! sPaQL extends PaQL (the deterministic Package Query Language) with
//! stochastic constraints and objectives (Appendix A of the paper):
//!
//! * `EXPECTED SUM(A) ⊙ v` — expectation constraints,
//! * `SUM(A) ⊙ v WITH PROBABILITY >= p` — probabilistic ("chance") constraints,
//! * `MAXIMIZE / MINIMIZE EXPECTED SUM(A)` — expectation objectives,
//! * `MAXIMIZE / MINIMIZE PROBABILITY OF SUM(A) ⊙ v` — probability objectives.

use crate::token::CompareOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An aggregate over the package: `SUM(attr)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AggExpr {
    /// `SUM(attribute)`.
    Sum {
        /// The attribute being summed.
        attribute: String,
    },
    /// `COUNT(*)` — equivalent to `SUM(1)`.
    Count,
}

impl AggExpr {
    /// The attribute referenced, if any.
    pub fn attribute(&self) -> Option<&str> {
        match self {
            AggExpr::Sum { attribute } => Some(attribute),
            AggExpr::Count => None,
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggExpr::Sum { attribute } => write!(f, "SUM({attribute})"),
            AggExpr::Count => write!(f, "COUNT(*)"),
        }
    }
}

/// A package-level constraint in the `SUCH THAT` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstraintExpr {
    /// A deterministic linear constraint `agg ⊙ v`.
    Deterministic {
        /// The aggregate.
        agg: AggExpr,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand side.
        value: f64,
    },
    /// A two-sided constraint `agg BETWEEN lo AND hi`.
    Between {
        /// The aggregate.
        agg: AggExpr,
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// An expectation constraint `EXPECTED agg ⊙ v`.
    Expected {
        /// The aggregate.
        agg: AggExpr,
        /// Comparison operator.
        op: CompareOp,
        /// Right-hand side.
        value: f64,
    },
    /// A probabilistic constraint `agg ⊙ v WITH PROBABILITY ⊙p p`.
    Probabilistic {
        /// The aggregate of the inner constraint.
        agg: AggExpr,
        /// Inner comparison operator.
        op: CompareOp,
        /// Inner right-hand side (the paper's `v`).
        value: f64,
        /// Probability comparison (usually `>=`).
        prob_op: CompareOp,
        /// Probability bound (the paper's `p`).
        probability: f64,
    },
}

impl fmt::Display for ConstraintExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintExpr::Deterministic { agg, op, value } => write!(f, "{agg} {op} {value}"),
            ConstraintExpr::Between { agg, low, high } => {
                write!(f, "{agg} BETWEEN {low} AND {high}")
            }
            ConstraintExpr::Expected { agg, op, value } => {
                write!(f, "EXPECTED {agg} {op} {value}")
            }
            ConstraintExpr::Probabilistic {
                agg,
                op,
                value,
                prob_op,
                probability,
            } => write!(
                f,
                "{agg} {op} {value} WITH PROBABILITY {prob_op} {probability}"
            ),
        }
    }
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveSense {
    /// `MAXIMIZE`.
    Maximize,
    /// `MINIMIZE`.
    Minimize,
}

impl fmt::Display for ObjectiveSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveSense::Maximize => write!(f, "MAXIMIZE"),
            ObjectiveSense::Minimize => write!(f, "MINIMIZE"),
        }
    }
}

/// The objective expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveExpr {
    /// `EXPECTED SUM(attr)`.
    ExpectedSum {
        /// Attribute being summed.
        attribute: String,
    },
    /// Deterministic `SUM(attr)`.
    Sum {
        /// Attribute being summed.
        attribute: String,
    },
    /// `COUNT(*)`.
    Count,
    /// `PROBABILITY OF SUM(attr) ⊙ v`.
    ProbabilityOf {
        /// Attribute of the inner sum.
        attribute: String,
        /// Inner comparison.
        op: CompareOp,
        /// Inner right-hand side.
        value: f64,
    },
}

impl fmt::Display for ObjectiveExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveExpr::ExpectedSum { attribute } => write!(f, "EXPECTED SUM({attribute})"),
            ObjectiveExpr::Sum { attribute } => write!(f, "SUM({attribute})"),
            ObjectiveExpr::Count => write!(f, "COUNT(*)"),
            ObjectiveExpr::ProbabilityOf {
                attribute,
                op,
                value,
            } => write!(f, "PROBABILITY OF SUM({attribute}) {op} {value}"),
        }
    }
}

/// A full objective clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Maximize or minimize.
    pub sense: ObjectiveSense,
    /// What to optimize.
    pub expr: ObjectiveExpr,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.sense, self.expr)
    }
}

/// A literal value in a `WHERE` predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredicateValue {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Text(String),
}

impl fmt::Display for PredicateValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateValue::Number(n) => write!(f, "{n}"),
            PredicateValue::Text(s) => write!(f, "'{s}'"),
        }
    }
}

/// One tuple-level predicate `attribute ⊙ literal`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrPredicate {
    /// Attribute name.
    pub attribute: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal to compare with.
    pub value: PredicateValue,
}

impl fmt::Display for AttrPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op, self.value)
    }
}

/// A conjunction of tuple-level predicates (the `WHERE` clause).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WherePredicate {
    /// Conjoined predicates.
    pub conjuncts: Vec<AttrPredicate>,
}

/// A parsed stochastic package query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageQuery {
    /// Optional package alias (`AS name`).
    pub alias: Option<String>,
    /// Input relation name.
    pub table: String,
    /// Optional `REPEAT l`: each tuple may appear at most `l + 1` times.
    pub repeat: Option<u32>,
    /// Optional tuple-level `WHERE` clause.
    pub where_clause: Option<WherePredicate>,
    /// Package-level constraints (`SUCH THAT`).
    pub constraints: Vec<ConstraintExpr>,
    /// Optional objective.
    pub objective: Option<Objective>,
}

impl PackageQuery {
    /// Count the probabilistic constraints in the query.
    pub fn num_probabilistic_constraints(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| matches!(c, ConstraintExpr::Probabilistic { .. }))
            .count()
    }

    /// All attribute names referenced anywhere in the query.
    pub fn referenced_attributes(&self) -> Vec<&str> {
        let mut attrs = Vec::new();
        for c in &self.constraints {
            let agg = match c {
                ConstraintExpr::Deterministic { agg, .. }
                | ConstraintExpr::Between { agg, .. }
                | ConstraintExpr::Expected { agg, .. }
                | ConstraintExpr::Probabilistic { agg, .. } => agg,
            };
            if let Some(a) = agg.attribute() {
                attrs.push(a);
            }
        }
        if let Some(obj) = &self.objective {
            match &obj.expr {
                ObjectiveExpr::ExpectedSum { attribute }
                | ObjectiveExpr::Sum { attribute }
                | ObjectiveExpr::ProbabilityOf { attribute, .. } => attrs.push(attribute),
                ObjectiveExpr::Count => {}
            }
        }
        if let Some(w) = &self.where_clause {
            for p in &w.conjuncts {
                attrs.push(&p.attribute);
            }
        }
        attrs
    }
}

impl fmt::Display for PackageQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT PACKAGE(*)")?;
        if let Some(alias) = &self.alias {
            write!(f, " AS {alias}")?;
        }
        write!(f, " FROM {}", self.table)?;
        if let Some(r) = self.repeat {
            write!(f, " REPEAT {r}")?;
        }
        if let Some(w) = &self.where_clause {
            let parts: Vec<String> = w.conjuncts.iter().map(|p| p.to_string()).collect();
            write!(f, " WHERE {}", parts.join(" AND "))?;
        }
        if !self.constraints.is_empty() {
            let parts: Vec<String> = self.constraints.iter().map(|c| c.to_string()).collect();
            write!(f, " SUCH THAT {}", parts.join(" AND "))?;
        }
        if let Some(obj) = &self.objective {
            write!(f, " {obj}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_query() -> PackageQuery {
        PackageQuery {
            alias: Some("Portfolio".into()),
            table: "Stock_Investments".into(),
            repeat: None,
            where_clause: None,
            constraints: vec![
                ConstraintExpr::Deterministic {
                    agg: AggExpr::Sum {
                        attribute: "price".into(),
                    },
                    op: CompareOp::Le,
                    value: 1000.0,
                },
                ConstraintExpr::Probabilistic {
                    agg: AggExpr::Sum {
                        attribute: "Gain".into(),
                    },
                    op: CompareOp::Ge,
                    value: -10.0,
                    prob_op: CompareOp::Ge,
                    probability: 0.95,
                },
            ],
            objective: Some(Objective {
                sense: ObjectiveSense::Maximize,
                expr: ObjectiveExpr::ExpectedSum {
                    attribute: "Gain".into(),
                },
            }),
        }
    }

    #[test]
    fn display_round_trips_structure() {
        let q = figure1_query();
        let text = q.to_string();
        assert!(text.contains("SELECT PACKAGE(*) AS Portfolio"));
        assert!(text.contains("SUM(price) <= 1000"));
        assert!(text.contains("WITH PROBABILITY >= 0.95"));
        assert!(text.contains("MAXIMIZE EXPECTED SUM(Gain)"));
    }

    #[test]
    fn counts_probabilistic_constraints() {
        let q = figure1_query();
        assert_eq!(q.num_probabilistic_constraints(), 1);
    }

    #[test]
    fn referenced_attributes_cover_all_clauses() {
        let mut q = figure1_query();
        q.where_clause = Some(WherePredicate {
            conjuncts: vec![AttrPredicate {
                attribute: "sell_in".into(),
                op: CompareOp::Eq,
                value: PredicateValue::Text("1 day".into()),
            }],
        });
        let attrs = q.referenced_attributes();
        assert!(attrs.contains(&"price"));
        assert!(attrs.contains(&"Gain"));
        assert!(attrs.contains(&"sell_in"));
    }

    #[test]
    fn agg_and_objective_display() {
        assert_eq!(AggExpr::Count.to_string(), "COUNT(*)");
        assert_eq!(
            AggExpr::Sum {
                attribute: "x".into()
            }
            .to_string(),
            "SUM(x)"
        );
        assert_eq!(
            ObjectiveExpr::ProbabilityOf {
                attribute: "revenue".into(),
                op: CompareOp::Ge,
                value: 1000.0
            }
            .to_string(),
            "PROBABILITY OF SUM(revenue) >= 1000"
        );
        assert_eq!(ObjectiveSense::Minimize.to_string(), "MINIMIZE");
        assert_eq!(
            ConstraintExpr::Between {
                agg: AggExpr::Count,
                low: 5.0,
                high: 10.0
            }
            .to_string(),
            "COUNT(*) BETWEEN 5 AND 10"
        );
        assert_eq!(
            ConstraintExpr::Expected {
                agg: AggExpr::Sum {
                    attribute: "a".into()
                },
                op: CompareOp::Le,
                value: 3.0
            }
            .to_string(),
            "EXPECTED SUM(a) <= 3"
        );
        assert_eq!(PredicateValue::Number(2.0).to_string(), "2");
    }
}
