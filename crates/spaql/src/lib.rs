//! # spq-spaql — the stochastic Package Query Language
//!
//! sPaQL is the paper's SQL extension for expressing stochastic package
//! queries: packages (multisets of tuples) subject to package-level linear
//! constraints that may be deterministic, expectations, or probabilistic
//! ("chance") constraints, with deterministic, expectation, or probability
//! objectives.
//!
//! This crate provides:
//!
//! * [`tokenize`] / [`parse`] — a lexer and recursive-descent parser for the
//!   grammar of the paper's Appendix A (Figure 8),
//! * the [`ast`] module — the query AST ([`PackageQuery`] and friends),
//! * [`bind`] — semantic analysis against an [`spq_mcdb::Relation`] schema,
//!   producing a [`BoundQuery`] with canonicalized attribute names and the
//!   tuple candidate set induced by the `WHERE` clause.
//!
//! ```
//! let query = spq_spaql::parse(
//!     "SELECT PACKAGE(*) AS Portfolio FROM Stock_Investments \
//!      SUCH THAT SUM(price) <= 1000 AND \
//!      SUM(Gain) >= -10 WITH PROBABILITY >= 0.95 \
//!      MAXIMIZE EXPECTED SUM(Gain)",
//! ).unwrap();
//! assert_eq!(query.num_probabilistic_constraints(), 1);
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod parser;
pub mod token;

pub use ast::{
    AggExpr, AttrPredicate, ConstraintExpr, Objective, ObjectiveExpr, ObjectiveSense, PackageQuery,
    PredicateValue, WherePredicate,
};
pub use binder::{bind, BoundQuery};
pub use error::SpaqlError;
pub use parser::parse;
pub use token::{tokenize, CompareOp, Keyword, Token};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpaqlError>;
