//! Recursive-descent parser for sPaQL.

use crate::ast::{
    AggExpr, AttrPredicate, ConstraintExpr, Objective, ObjectiveExpr, ObjectiveSense, PackageQuery,
    PredicateValue, WherePredicate,
};
use crate::error::SpaqlError;
use crate::token::{tokenize, CompareOp, Keyword, Token};
use crate::Result;

/// Parse an sPaQL query string into a [`PackageQuery`].
pub fn parse(input: &str) -> Result<PackageQuery> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.query()?;
    parser.expect_end()?;
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn error(&self, expected: &str) -> SpaqlError {
        SpaqlError::Unexpected {
            expected: expected.to_string(),
            found: self
                .peek()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "end of query".to_string()),
            position: self.pos,
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        match self.peek() {
            Some(Token::Keyword(k)) if *k == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("{kw:?}"))),
        }
    }

    fn accept_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, tok: &Token, what: &str) -> Result<()> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn identifier(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error(what)),
        }
    }

    fn number(&mut self) -> Result<f64> {
        // Allow a leading sign.
        let mut sign = 1.0;
        loop {
            match self.peek() {
                Some(Token::Minus) => {
                    sign = -sign;
                    self.pos += 1;
                }
                Some(Token::Plus) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(sign * n)
            }
            _ => Err(self.error("a number")),
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp> {
        match self.peek() {
            Some(Token::Compare(op)) => {
                let op = *op;
                self.pos += 1;
                Ok(op)
            }
            _ => Err(self.error("a comparison operator")),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        while matches!(self.peek(), Some(Token::Semicolon)) {
            self.pos += 1;
        }
        if self.peek().is_some() {
            return Err(self.error("end of query"));
        }
        Ok(())
    }

    fn query(&mut self) -> Result<PackageQuery> {
        self.expect_keyword(Keyword::Select)?;
        self.expect_keyword(Keyword::Package)?;
        self.expect_token(&Token::LParen, "`(`")?;
        self.expect_token(&Token::Star, "`*`")?;
        self.expect_token(&Token::RParen, "`)`")?;
        let alias = if self.accept_keyword(Keyword::As) {
            Some(self.identifier("a package alias")?)
        } else {
            None
        };
        self.expect_keyword(Keyword::From)?;
        let table = self.identifier("a table name")?;
        let repeat = if self.accept_keyword(Keyword::Repeat) {
            Some(self.number()? as u32)
        } else {
            None
        };
        let where_clause = if self.accept_keyword(Keyword::Where) {
            Some(self.where_clause()?)
        } else {
            None
        };
        let constraints = if self.accept_keyword(Keyword::Such) {
            self.expect_keyword(Keyword::That)?;
            self.constraints()?
        } else {
            Vec::new()
        };
        let objective = match self.peek() {
            Some(Token::Keyword(Keyword::Maximize)) => {
                self.pos += 1;
                Some(self.objective(ObjectiveSense::Maximize)?)
            }
            Some(Token::Keyword(Keyword::Minimize)) => {
                self.pos += 1;
                Some(self.objective(ObjectiveSense::Minimize)?)
            }
            _ => None,
        };
        Ok(PackageQuery {
            alias,
            table,
            repeat,
            where_clause,
            constraints,
            objective,
        })
    }

    fn where_clause(&mut self) -> Result<WherePredicate> {
        let mut conjuncts = vec![self.attr_predicate()?];
        // Only consume AND when it is followed by another identifier (an
        // attribute), otherwise the AND belongs to an outer clause.
        while matches!(self.peek(), Some(Token::Keyword(Keyword::And)))
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(_)))
        {
            self.pos += 1;
            conjuncts.push(self.attr_predicate()?);
        }
        Ok(WherePredicate { conjuncts })
    }

    fn attr_predicate(&mut self) -> Result<AttrPredicate> {
        let attribute = self.identifier("an attribute name")?;
        let op = self.compare_op()?;
        let value = match self.peek() {
            Some(Token::Str(s)) => {
                let v = PredicateValue::Text(s.clone());
                self.pos += 1;
                v
            }
            _ => PredicateValue::Number(self.number()?),
        };
        Ok(AttrPredicate {
            attribute,
            op,
            value,
        })
    }

    fn constraints(&mut self) -> Result<Vec<ConstraintExpr>> {
        let mut out = vec![self.constraint()?];
        while matches!(self.peek(), Some(Token::Keyword(Keyword::And))) {
            self.pos += 1;
            out.push(self.constraint()?);
        }
        Ok(out)
    }

    fn agg(&mut self) -> Result<AggExpr> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Sum)) => {
                self.pos += 1;
                self.expect_token(&Token::LParen, "`(`")?;
                let attribute = self.identifier("an attribute name")?;
                self.expect_token(&Token::RParen, "`)`")?;
                Ok(AggExpr::Sum { attribute })
            }
            Some(Token::Keyword(Keyword::Count)) => {
                self.pos += 1;
                self.expect_token(&Token::LParen, "`(`")?;
                self.expect_token(&Token::Star, "`*`")?;
                self.expect_token(&Token::RParen, "`)`")?;
                Ok(AggExpr::Count)
            }
            _ => Err(self.error("SUM(...) or COUNT(*)")),
        }
    }

    fn constraint(&mut self) -> Result<ConstraintExpr> {
        let expected = self.accept_keyword(Keyword::Expected);
        let agg = self.agg()?;
        if self.accept_keyword(Keyword::Between) {
            let low = self.number()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.number()?;
            if expected {
                return Err(SpaqlError::Semantic(
                    "EXPECTED ... BETWEEN is not supported; use two EXPECTED constraints".into(),
                ));
            }
            return Ok(ConstraintExpr::Between { agg, low, high });
        }
        let op = self.compare_op()?;
        let value = self.number()?;
        if self.accept_keyword(Keyword::With) {
            self.expect_keyword(Keyword::Probability)?;
            let prob_op = self.compare_op()?;
            let probability = self.number()?;
            if expected {
                return Err(SpaqlError::Semantic(
                    "a constraint cannot be both EXPECTED and probabilistic".into(),
                ));
            }
            return Ok(ConstraintExpr::Probabilistic {
                agg,
                op,
                value,
                prob_op,
                probability,
            });
        }
        if expected {
            Ok(ConstraintExpr::Expected { agg, op, value })
        } else {
            Ok(ConstraintExpr::Deterministic { agg, op, value })
        }
    }

    fn objective(&mut self, sense: ObjectiveSense) -> Result<Objective> {
        let expr = match self.peek() {
            Some(Token::Keyword(Keyword::Expected)) => {
                self.pos += 1;
                match self.agg()? {
                    AggExpr::Sum { attribute } => ObjectiveExpr::ExpectedSum { attribute },
                    AggExpr::Count => ObjectiveExpr::Count,
                }
            }
            Some(Token::Keyword(Keyword::Probability)) => {
                self.pos += 1;
                self.expect_keyword(Keyword::Of)?;
                match self.agg()? {
                    AggExpr::Sum { attribute } => {
                        let op = self.compare_op()?;
                        let value = self.number()?;
                        ObjectiveExpr::ProbabilityOf {
                            attribute,
                            op,
                            value,
                        }
                    }
                    AggExpr::Count => {
                        return Err(SpaqlError::Semantic(
                            "PROBABILITY OF COUNT(*) is not supported".into(),
                        ))
                    }
                }
            }
            _ => match self.agg()? {
                AggExpr::Sum { attribute } => ObjectiveExpr::Sum { attribute },
                AggExpr::Count => ObjectiveExpr::Count,
            },
        };
        Ok(Objective { sense, expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure_1_query() {
        let q = parse(
            "SELECT PACKAGE(*) AS Portfolio FROM Stock_Investments \
             SUCH THAT SUM(price) <= 1000 AND \
             SUM(Gain) >= -10 WITH PROBABILITY >= 0.95 \
             MAXIMIZE EXPECTED SUM(Gain)",
        )
        .unwrap();
        assert_eq!(q.alias.as_deref(), Some("Portfolio"));
        assert_eq!(q.table, "Stock_Investments");
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.num_probabilistic_constraints(), 1);
        match &q.constraints[1] {
            ConstraintExpr::Probabilistic {
                value, probability, ..
            } => {
                assert_eq!(*value, -10.0);
                assert_eq!(*probability, 0.95);
            }
            other => panic!("expected probabilistic constraint, got {other:?}"),
        }
        let obj = q.objective.unwrap();
        assert_eq!(obj.sense, ObjectiveSense::Maximize);
        assert_eq!(
            obj.expr,
            ObjectiveExpr::ExpectedSum {
                attribute: "Gain".into()
            }
        );
    }

    #[test]
    fn parses_the_galaxy_template() {
        let q = parse(
            "SELECT PACKAGE(*) FROM Galaxy SUCH THAT \
             COUNT(*) BETWEEN 5 AND 10 AND \
             SUM(Petromag_r) >= 40 WITH PROBABILITY >= 0.9 \
             MINIMIZE EXPECTED SUM(Petromag_r)",
        )
        .unwrap();
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(
            q.constraints[0],
            ConstraintExpr::Between {
                agg: AggExpr::Count,
                low: 5.0,
                high: 10.0
            }
        );
        assert_eq!(q.objective.unwrap().sense, ObjectiveSense::Minimize);
    }

    #[test]
    fn parses_the_tpch_template_with_probability_objective() {
        let q = parse(
            "SELECT PACKAGE(*) FROM Tpch_3 SUCH THAT \
             COUNT(*) BETWEEN 1 AND 10 AND \
             SUM(Quantity) <= 15 WITH PROBABILITY >= 0.9 \
             MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000",
        )
        .unwrap();
        let obj = q.objective.unwrap();
        assert_eq!(
            obj.expr,
            ObjectiveExpr::ProbabilityOf {
                attribute: "Revenue".into(),
                op: CompareOp::Ge,
                value: 1000.0
            }
        );
    }

    #[test]
    fn parses_where_repeat_and_expected_constraints() {
        let q = parse(
            "SELECT PACKAGE(*) FROM trades REPEAT 2 \
             WHERE sell_in = '1 day' AND price <= 500 \
             SUCH THAT EXPECTED SUM(gain) >= 5 AND COUNT(*) <= 3 \
             MINIMIZE COUNT(*);",
        )
        .unwrap();
        assert_eq!(q.repeat, Some(2));
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts.len(), 2);
        assert_eq!(w.conjuncts[0].value, PredicateValue::Text("1 day".into()));
        assert_eq!(w.conjuncts[1].op, CompareOp::Le);
        assert!(matches!(q.constraints[0], ConstraintExpr::Expected { .. }));
        assert_eq!(q.objective.unwrap().expr, ObjectiveExpr::Count);
    }

    #[test]
    fn query_without_objective_or_constraints() {
        let q = parse("SELECT PACKAGE(*) FROM t").unwrap();
        assert!(q.constraints.is_empty());
        assert!(q.objective.is_none());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn display_then_reparse_round_trip() {
        let original = parse(
            "SELECT PACKAGE(*) AS P FROM t SUCH THAT \
             SUM(a) <= 10 AND SUM(b) >= -2 WITH PROBABILITY >= 0.9 \
             MAXIMIZE EXPECTED SUM(b)",
        )
        .unwrap();
        let reparsed = parse(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn error_cases() {
        // Missing PACKAGE keyword.
        assert!(parse("SELECT * FROM t").is_err());
        // Garbage after the query.
        assert!(parse("SELECT PACKAGE(*) FROM t EXTRA").is_err());
        // BETWEEN with EXPECTED is rejected.
        assert!(
            parse("SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(a) BETWEEN 1 AND 2").is_err()
        );
        // EXPECTED + WITH PROBABILITY is rejected.
        assert!(parse(
            "SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(a) >= 1 WITH PROBABILITY >= 0.5"
        )
        .is_err());
        // PROBABILITY OF COUNT is rejected.
        assert!(parse("SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF COUNT(*) >= 1").is_err());
        // Missing closing paren.
        assert!(parse("SELECT PACKAGE(* FROM t").is_err());
        // Missing number.
        assert!(parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= ").is_err());
    }

    #[test]
    fn negative_and_signed_numbers() {
        let q =
            parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= - 10 AND SUM(b) <= +5").unwrap();
        match &q.constraints[0] {
            ConstraintExpr::Deterministic { value, .. } => assert_eq!(*value, -10.0),
            other => panic!("unexpected {other:?}"),
        }
        match &q.constraints[1] {
            ConstraintExpr::Deterministic { value, .. } => assert_eq!(*value, 5.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn probability_constraint_with_le_bound() {
        let q = parse("SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= 0 WITH PROBABILITY <= 0.1")
            .unwrap();
        match &q.constraints[0] {
            ConstraintExpr::Probabilistic { prob_op, .. } => assert_eq!(*prob_op, CompareOp::Le),
            other => panic!("unexpected {other:?}"),
        }
    }
}
