//! sPaQL parsing and binding errors.

use std::fmt;

/// Errors raised while lexing, parsing, or binding an sPaQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaqlError {
    /// An unexpected character was encountered while lexing.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Byte offset in the query string.
        position: usize,
    },
    /// A string or numeric literal was malformed.
    BadLiteral {
        /// Description of the problem.
        message: String,
        /// Byte offset in the query string.
        position: usize,
    },
    /// The parser expected something different.
    Unexpected {
        /// What the parser expected.
        expected: String,
        /// What it found instead.
        found: String,
        /// Token index.
        position: usize,
    },
    /// A query referenced an attribute that does not exist in the relation.
    UnknownAttribute(String),
    /// A query used a stochastic attribute where a deterministic one is
    /// required, or vice versa.
    AttributeKindMismatch {
        /// The attribute name.
        attribute: String,
        /// Description of the mismatch.
        message: String,
    },
    /// A probability bound was outside (0, 1).
    InvalidProbability(f64),
    /// The query mixes clauses in an unsupported way (e.g. no objective and
    /// no constraints).
    Semantic(String),
}

impl fmt::Display for SpaqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaqlError::UnexpectedChar { ch, position } => {
                write!(f, "unexpected character `{ch}` at byte {position}")
            }
            SpaqlError::BadLiteral { message, position } => {
                write!(f, "bad literal at byte {position}: {message}")
            }
            SpaqlError::Unexpected {
                expected,
                found,
                position,
            } => write!(f, "expected {expected}, found {found} (token {position})"),
            SpaqlError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            SpaqlError::AttributeKindMismatch { attribute, message } => {
                write!(f, "attribute `{attribute}`: {message}")
            }
            SpaqlError::InvalidProbability(p) => {
                write!(f, "probability bound {p} must lie in (0, 1)")
            }
            SpaqlError::Semantic(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SpaqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SpaqlError::Unexpected {
            expected: "SUM".into(),
            found: "COUNT".into(),
            position: 4,
        };
        let s = e.to_string();
        assert!(s.contains("SUM") && s.contains("COUNT"));
        assert!(SpaqlError::UnknownAttribute("gain".into())
            .to_string()
            .contains("gain"));
        assert!(SpaqlError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
    }
}
