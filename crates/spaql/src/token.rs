//! Tokens and the sPaQL lexer.

use crate::error::SpaqlError;
use crate::Result;

/// sPaQL keywords (case-insensitive in the source text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    Package,
    As,
    From,
    Repeat,
    Where,
    Such,
    That,
    And,
    Or,
    Not,
    Between,
    Sum,
    Count,
    Expected,
    Probability,
    With,
    Of,
    Maximize,
    Minimize,
    Input,
    Limit,
}

impl Keyword {
    /// Parse a keyword from an identifier-like word.
    pub fn from_word(word: &str) -> Option<Keyword> {
        let upper = word.to_ascii_uppercase();
        Some(match upper.as_str() {
            "SELECT" => Keyword::Select,
            "PACKAGE" => Keyword::Package,
            "AS" => Keyword::As,
            "FROM" => Keyword::From,
            "REPEAT" => Keyword::Repeat,
            "WHERE" => Keyword::Where,
            "SUCH" => Keyword::Such,
            "THAT" => Keyword::That,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "BETWEEN" => Keyword::Between,
            "SUM" => Keyword::Sum,
            "COUNT" => Keyword::Count,
            "EXPECTED" => Keyword::Expected,
            "PROBABILITY" => Keyword::Probability,
            "WITH" => Keyword::With,
            "OF" => Keyword::Of,
            "MAXIMIZE" => Keyword::Maximize,
            "MINIMIZE" => Keyword::Minimize,
            "INPUT" => Keyword::Input,
            "LIMIT" => Keyword::Limit,
            _ => return None,
        })
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CompareOp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<>` or `!=`
    Ne,
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CompareOp::Le => "<=",
            CompareOp::Ge => ">=",
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Gt => ">",
            CompareOp::Ne => "<>",
        };
        write!(f, "{s}")
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier (attribute, table or alias name).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal.
    Str(String),
    /// A comparison operator.
    Compare(CompareOp),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `-` (unary minus is folded into number literals by the parser).
    Minus,
    /// `+`
    Plus,
    /// `;`
    Semicolon,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number {n}"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Compare(op) => write!(f, "`{op}`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Star => write!(f, "`*`"),
            Token::Comma => write!(f, "`,`"),
            Token::Minus => write!(f, "`-`"),
            Token::Plus => write!(f, "`+`"),
            Token::Semicolon => write!(f, "`;`"),
        }
    }
}

/// Tokenize an sPaQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Could be a comment `--` or a minus sign.
                if i + 1 < bytes.len() && bytes[i + 1] as char == '-' {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Compare(CompareOp::Le));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                    tokens.push(Token::Compare(CompareOp::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Compare(CompareOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Compare(CompareOp::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Compare(CompareOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Compare(CompareOp::Eq));
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    tokens.push(Token::Compare(CompareOp::Ne));
                    i += 2;
                } else {
                    return Err(SpaqlError::UnexpectedChar {
                        ch: '!',
                        position: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SpaqlError::BadLiteral {
                        message: "unterminated string literal".into(),
                        position: i,
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp && j > start {
                        seen_exp = true;
                        j += 1;
                        if j < bytes.len() && (bytes[j] as char == '+' || bytes[j] as char == '-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let value: f64 = text.parse().map_err(|_| SpaqlError::BadLiteral {
                    message: format!("cannot parse number `{text}`"),
                    position: start,
                })?;
                tokens.push(Token::Number(value));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..j];
                match Keyword::from_word(word) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
                i = j;
            }
            other => {
                return Err(SpaqlError::UnexpectedChar {
                    ch: other,
                    position: i,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_figure_1_query() {
        let q = "SELECT PACKAGE(*) AS Portfolio FROM Stock_Investments \
                 SUCH THAT SUM(price) <= 1000 AND \
                 SUM(Gain) >= -10 WITH PROBABILITY >= 0.95 \
                 MAXIMIZE EXPECTED SUM(Gain)";
        let toks = tokenize(q).unwrap();
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[1], Token::Keyword(Keyword::Package));
        assert!(toks.contains(&Token::Ident("Stock_Investments".into())));
        assert!(toks.contains(&Token::Number(1000.0)));
        assert!(toks.contains(&Token::Compare(CompareOp::Ge)));
        assert!(toks.contains(&Token::Number(0.95)));
        assert!(toks.contains(&Token::Keyword(Keyword::Maximize)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select Package COUNT sUm").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Package),
                Token::Keyword(Keyword::Count),
                Token::Keyword(Keyword::Sum),
            ]
        );
    }

    #[test]
    fn numbers_including_scientific_notation() {
        let toks = tokenize("1 2.5 1e3 4.2E-2 .5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.042),
                Token::Number(0.5),
            ]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        let toks = tokenize("<= >= = < > <> != ( ) * , ; + -").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Compare(CompareOp::Le),
                Token::Compare(CompareOp::Ge),
                Token::Compare(CompareOp::Eq),
                Token::Compare(CompareOp::Lt),
                Token::Compare(CompareOp::Gt),
                Token::Compare(CompareOp::Ne),
                Token::Compare(CompareOp::Ne),
                Token::LParen,
                Token::RParen,
                Token::Star,
                Token::Comma,
                Token::Semicolon,
                Token::Plus,
                Token::Minus,
            ]
        );
    }

    #[test]
    fn string_literals_and_comments() {
        let toks = tokenize("WHERE stock = 'AAPL' -- a comment\n AND 1").unwrap();
        assert!(toks.contains(&Token::Str("AAPL".into())));
        assert!(toks.contains(&Token::Keyword(Keyword::And)));
        assert!(toks.contains(&Token::Number(1.0)));
        // The comment body is dropped entirely.
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn lexer_errors() {
        assert!(matches!(
            tokenize("price @ 3").unwrap_err(),
            SpaqlError::UnexpectedChar { ch: '@', .. }
        ));
        assert!(matches!(
            tokenize("'oops").unwrap_err(),
            SpaqlError::BadLiteral { .. }
        ));
        assert!(matches!(
            tokenize("a ! b").unwrap_err(),
            SpaqlError::UnexpectedChar { ch: '!', .. }
        ));
    }

    #[test]
    fn compare_op_display() {
        assert_eq!(CompareOp::Le.to_string(), "<=");
        assert_eq!(CompareOp::Ne.to_string(), "<>");
        assert_eq!(Token::Star.to_string(), "`*`");
    }
}
