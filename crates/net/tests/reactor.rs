//! End-to-end reactor tests over real TCP sockets: echo service, write-cap
//! disconnect of a stalled reader, idle-timeout reaping, prompt close
//! notification on client drop, and graceful drain on shutdown.

use spq_net::{CloseReason, ConnId, Handler, Reactor, ReactorConfig, ReactorHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Echoes every line back, optionally amplified, and records lifecycle
/// events for assertions.
struct Echo {
    /// Bytes of padding appended to each echo (drives write-cap tests).
    pad: usize,
    opened: AtomicUsize,
    closed: AtomicUsize,
    close_reasons: Mutex<Vec<(ConnId, CloseReason)>>,
}

impl Echo {
    fn new(pad: usize) -> Arc<Self> {
        Arc::new(Echo {
            pad,
            opened: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            close_reasons: Mutex::new(Vec::new()),
        })
    }
}

impl Handler for Echo {
    fn on_open(&self, _conn: ConnId, _peer: SocketAddr) {
        self.opened.fetch_add(1, Ordering::SeqCst);
    }

    fn on_line(&self, conn: ConnId, line: &str, reactor: &ReactorHandle) {
        let mut reply = String::from(line);
        reply.extend(std::iter::repeat_n('x', self.pad));
        reactor.send(conn, &reply);
    }

    fn on_close(&self, conn: ConnId, reason: CloseReason) {
        self.closed.fetch_add(1, Ordering::SeqCst);
        self.close_reasons.lock().unwrap().push((conn, reason));
    }
}

fn start(handler: Arc<Echo>, config: ReactorConfig) -> Reactor {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    Reactor::start(listener, handler, config).unwrap()
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn echoes_lines_across_many_connections() {
    let handler = Echo::new(0);
    let reactor = start(handler.clone(), ReactorConfig::default());
    let addr = reactor.local_addr();

    let mut clients: Vec<_> = (0..8)
        .map(|_| {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            BufReader::new(stream)
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        // Two pipelined lines, plus a blank one the reactor must skip.
        client
            .get_mut()
            .write_all(format!("hello {i}\n\nworld {i}\n").as_bytes())
            .unwrap();
    }
    for (i, client) in clients.iter_mut().enumerate() {
        let mut line = String::new();
        client.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), format!("hello {i}"));
        line.clear();
        client.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), format!("world {i}"));
    }
    assert_eq!(reactor.handle().open_connections(), 8);
    drop(clients);
    wait_until("all closes observed", || {
        handler.closed.load(Ordering::SeqCst) == 8
    });
    assert_eq!(reactor.handle().open_connections(), 0);
    reactor.shutdown();
}

#[test]
fn stalled_reader_is_disconnected_at_the_write_cap() {
    // Each request echoes ~4 KiB; the write cap holds two of those. A client
    // that keeps sending but never reads must be disconnected, not buffered.
    let handler = Echo::new(4096);
    let config = ReactorConfig {
        write_buffer_bytes: 8192,
        ..ReactorConfig::default()
    };
    let reactor = start(handler.clone(), config);
    let mut client = TcpStream::connect(reactor.local_addr()).unwrap();
    client.set_nodelay(true).unwrap();

    // Never read; just keep asking for output until the server hangs up.
    let mut disconnected = false;
    for _ in 0..10_000 {
        if client.write_all(b"gimme\n").is_err() {
            disconnected = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
        if handler.closed.load(Ordering::SeqCst) == 1 {
            disconnected = true;
            break;
        }
    }
    assert!(disconnected, "server never dropped the stalled reader");
    wait_until("close recorded", || {
        handler.closed.load(Ordering::SeqCst) == 1
    });
    let reasons = handler.close_reasons.lock().unwrap();
    assert_eq!(reasons[0].1, CloseReason::WriteCapExceeded);
    drop(reasons);
    reactor.shutdown();
}

#[test]
fn overlong_request_line_is_disconnected_at_the_read_cap() {
    let handler = Echo::new(0);
    let config = ReactorConfig {
        read_buffer_bytes: 1024,
        ..ReactorConfig::default()
    };
    let reactor = start(handler.clone(), config);
    let mut client = TcpStream::connect(reactor.local_addr()).unwrap();
    // 1 MiB with no newline: the server must cut us off near 1 KiB.
    let blob = vec![b'a'; 1 << 20];
    let _ = client.write_all(&blob);
    wait_until("read-cap close", || {
        handler.closed.load(Ordering::SeqCst) == 1
    });
    let reasons = handler.close_reasons.lock().unwrap();
    assert_eq!(reasons[0].1, CloseReason::ReadCapExceeded);
    drop(reasons);
    reactor.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let handler = Echo::new(0);
    let config = ReactorConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ReactorConfig::default()
    };
    let reactor = start(handler.clone(), config);
    let mut client = TcpStream::connect(reactor.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wait_until("open observed", || {
        handler.opened.load(Ordering::SeqCst) == 1
    });

    let started = Instant::now();
    let mut buf = [0u8; 16];
    // The server closes us; read returns 0 (EOF).
    let n = client.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected server-side close");
    assert!(started.elapsed() >= Duration::from_millis(200));
    wait_until("idle close recorded", || {
        handler.closed.load(Ordering::SeqCst) == 1
    });
    assert_eq!(
        handler.close_reasons.lock().unwrap()[0].1,
        CloseReason::IdleTimeout
    );
    reactor.shutdown();
}

#[test]
fn client_drop_is_noticed_promptly() {
    let handler = Echo::new(0);
    let reactor = start(handler.clone(), ReactorConfig::default());
    let client = TcpStream::connect(reactor.local_addr()).unwrap();
    wait_until("open observed", || {
        handler.opened.load(Ordering::SeqCst) == 1
    });

    let started = Instant::now();
    drop(client);
    wait_until("close observed", || {
        handler.closed.load(Ordering::SeqCst) == 1
    });
    // EOF must surface via poll readiness, not an idle/poll timeout sweep.
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "close took {:?}",
        started.elapsed()
    );
    assert_eq!(
        handler.close_reasons.lock().unwrap()[0].1,
        CloseReason::PeerClosed
    );
    reactor.shutdown();
}

#[test]
fn shutdown_drains_pending_responses() {
    let handler = Echo::new(0);
    let reactor = start(handler.clone(), ReactorConfig::default());
    let stream = TcpStream::connect(reactor.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut client = BufReader::new(stream);
    client.get_mut().write_all(b"parting words\n").unwrap();
    wait_until("line handled", || {
        handler.opened.load(Ordering::SeqCst) == 1
    });

    // Shut down immediately; the queued echo must still arrive, then EOF.
    reactor.shutdown();
    let mut line = String::new();
    client.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "parting words");
    line.clear();
    assert_eq!(
        client.read_line(&mut line).unwrap(),
        0,
        "clean EOF after drain"
    );
    assert_eq!(handler.closed.load(Ordering::SeqCst), 1);
}

#[test]
fn connection_limit_turns_away_excess_clients() {
    let handler = Echo::new(0);
    let config = ReactorConfig {
        max_connections: 2,
        ..ReactorConfig::default()
    };
    let reactor = start(handler.clone(), config);
    let addr = reactor.local_addr();
    let keep: Vec<_> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    wait_until("two admitted", || reactor.handle().open_connections() == 2);

    // The third connects at the TCP level but the reactor closes it.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 1];
    let n = extra.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "expected immediate close for over-limit client");
    assert_eq!(reactor.handle().open_connections(), 2);
    drop(keep);
    reactor.shutdown();
}
