//! # spq-net — zero-dependency event-driven networking
//!
//! The networking layer under `spqd`: a single-threaded [`poll(2)`][poll]
//! readiness reactor over nonblocking sockets, with per-connection
//! [capped read/write buffers](buffer) and a cross-thread
//! [wake pipe](poller). No external crates — the few POSIX entry points
//! needed (`poll`, `pipe`, `fcntl`) are declared directly against the C
//! library `std` already links.
//!
//! ## Architecture
//!
//! ```text
//!                 ┌──────────────────────────────┐
//!   TCP clients ──► Reactor (1 thread, poll(2))  │
//!                 │  · accept / read / flush     │
//!                 │  · line framing (ReadBuffer) │
//!                 │  · capped WriteBuffer/conn   │──► Handler::on_line
//!                 │  · idle + drain timers       │      (worker pool)
//!                 └──────────▲───────────────────┘
//!                            │ Waker (self-pipe)
//!                   ReactorHandle::send(conn, line)
//! ```
//!
//! * [`reactor::Reactor`] owns the listener and every connection; protocol
//!   logic plugs in through [`reactor::Handler`], whose callbacks run on the
//!   reactor thread and must not block.
//! * Worker threads answer through [`reactor::ReactorHandle::send`], which
//!   appends to the connection's capped [`buffer::WriteBuffer`] and wakes
//!   the poller via the self-pipe.
//! * Misbehaving peers are disconnected, never buffered without bound: an
//!   endless request line trips the read cap, a peer that stops reading
//!   trips the write cap, and a silent peer trips the idle timeout.
//! * Client disappearance (EOF/HUP) is observed promptly by the poll loop
//!   and surfaced as [`reactor::Handler::on_close`], which is what lets the
//!   query service cancel in-flight solves for dropped connections.
//!
//! [poll]: https://pubs.opengroup.org/onlinepubs/9699919799/functions/poll.html

pub mod sys;

pub mod buffer;
pub mod poller;
pub mod reactor;

pub use buffer::{CapExceeded, ReadBuffer, WriteBuffer};
pub use poller::{Poller, Waker};
pub use reactor::{CloseReason, ConnId, Handler, Reactor, ReactorConfig, ReactorHandle};
