//! Thin POSIX shims: `poll(2)` and a nonblocking self-wake pipe.
//!
//! The workspace builds without external crates, so the handful of libc
//! entry points the reactor needs are declared here directly; the symbols
//! come from the C library that `std` already links. Everything is plain
//! POSIX (`poll`, `pipe`, `fcntl`, `read`, `write`, `close`) — no
//! Linux-only syscalls — so the reactor runs on any Unix.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

/// `poll(2)` readiness flags (POSIX values, identical on Linux and the
/// BSDs).
pub const POLLIN: i16 = 0x001;
/// Writable (or connect completed).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// `struct pollfd` — layout fixed by POSIX.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which is how unused slots are parked).
    pub fd: i32,
    /// Requested events.
    pub events: i16,
    /// Returned events.
    pub revents: i16,
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0x800; // Linux; harmless superset bit elsewhere.

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// Block until one of `fds` is ready or `timeout_ms` elapses (negative =
/// forever). Returns the number of ready descriptors; `Interrupted` is
/// translated to `Ok(0)` so callers simply re-loop.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// A nonblocking pipe: `(read_end, write_end)`.
pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
    let mut fds = [0i32; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    let (r, w) = (OwnedFd(fds[0]), OwnedFd(fds[1]));
    set_nonblocking(r.0)?;
    set_nonblocking(w.0)?;
    Ok((r, w))
}

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A raw fd closed on drop (the pipe ends; sockets stay in `std` types).
#[derive(Debug)]
pub struct OwnedFd(pub RawFd);

impl OwnedFd {
    /// Write one byte, ignoring `WouldBlock` (a full pipe already wakes the
    /// poller) and `Interrupted`.
    pub fn write_byte(&self) {
        let byte = 1u8;
        unsafe { write(self.0, &byte, 1) };
    }

    /// Drain everything currently buffered (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.0, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_wakes_poll() {
        let (r, w) = nonblocking_pipe().unwrap();
        let mut fds = [PollFd {
            fd: r.0,
            events: POLLIN,
            revents: 0,
        }];
        // Nothing written yet: poll times out with no ready fds.
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0);
        w.write_byte();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].revents & POLLIN != 0);
        r.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0, "drained pipe is idle");
    }
}
