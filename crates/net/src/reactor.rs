//! The event-driven connection reactor.
//!
//! One thread runs a `poll(2)` readiness loop over a nonblocking listener
//! and every accepted connection (an *edge-tolerant* loop: readiness is
//! level-triggered, and every ready fd is drained to `WouldBlock`, so a
//! missed edge can never wedge a connection). Protocol logic lives in a
//! [`Handler`]: the reactor calls [`Handler::on_line`] for each complete
//! newline-terminated request line and [`Handler::on_close`] exactly once
//! per connection — promptly on client EOF/HUP, which is what lets a server
//! cancel in-flight work the moment its client vanishes.
//!
//! Responses flow back through the [`ReactorHandle`]: any thread (typically
//! a worker pool) calls [`ReactorHandle::send`], which appends to the
//! connection's capped write buffer and wakes the poller to flush. A
//! connection whose peer stops reading fills its write buffer to the
//! configured cap and is disconnected — memory per connection is bounded by
//! configuration, never by client behavior. Idle connections are reaped
//! after [`ReactorConfig::idle_timeout`]; shutdown drains pending writes
//! for up to [`ReactorConfig::drain_timeout`] before force-closing.

use crate::buffer::{ReadBuffer, WriteBuffer};
use crate::poller::{Poller, Waker};
use crate::sys::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use spq_obs::{Counter, Gauge, Named};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static OPEN_CONNECTIONS: Named<Gauge> = Named::new("spq_net_open_connections", Gauge::new());
static ACCEPTS: Named<Counter> = Named::new("spq_net_accepts_total", Counter::new());
static LIMIT_REJECTS: Named<Counter> =
    Named::new("spq_net_connection_limit_rejects_total", Counter::new());
static WRITE_CAP_DISCONNECTS: Named<Counter> =
    Named::new("spq_net_write_cap_disconnects_total", Counter::new());
static READ_CAP_DISCONNECTS: Named<Counter> =
    Named::new("spq_net_read_cap_disconnects_total", Counter::new());
static IDLE_DISCONNECTS: Named<Counter> =
    Named::new("spq_net_idle_disconnects_total", Counter::new());
static LINES: Named<Counter> = Named::new("spq_net_lines_total", Counter::new());

/// Identifies one accepted connection for the lifetime of a reactor.
/// Never reused.
pub type ConnId = u64;

/// Reactor limits and timeouts.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Connections held open simultaneously; further accepts are closed
    /// immediately.
    pub max_connections: usize,
    /// Hard cap on one connection's buffered inbound bytes — effectively
    /// the longest admissible request line. Exceeding it disconnects.
    pub read_buffer_bytes: usize,
    /// Hard cap on one connection's unflushed outbound bytes. A peer that
    /// stops reading hits this cap and is disconnected rather than growing
    /// the buffer without bound.
    pub write_buffer_bytes: usize,
    /// Close connections with no inbound traffic for this long
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// On shutdown, how long to keep flushing pending responses before
    /// force-closing the stragglers.
    pub drain_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 1024,
            read_buffer_bytes: 1 << 20,
            write_buffer_bytes: 4 << 20,
            idle_timeout: None,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Why the reactor closed a connection (passed to [`Handler::on_close`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed or reset the connection (EOF / HUP / read error).
    PeerClosed,
    /// The inbound buffer cap was exceeded (overlong request line).
    ReadCapExceeded,
    /// The outbound buffer cap was exceeded (peer stopped reading).
    WriteCapExceeded,
    /// No inbound traffic within the idle timeout.
    IdleTimeout,
    /// The handler or owner asked for the close
    /// ([`ReactorHandle::close`]), or the reactor is shutting down.
    Requested,
}

/// Protocol logic driven by the reactor. Callbacks run **on the reactor
/// thread** and must not block: hand slow work to a pool and answer later
/// through the [`ReactorHandle`].
pub trait Handler: Send + Sync + 'static {
    /// A connection was accepted.
    fn on_open(&self, _conn: ConnId, _peer: SocketAddr) {}

    /// One complete request line arrived (terminator stripped; empty lines
    /// are filtered out by the reactor).
    fn on_line(&self, conn: ConnId, line: &str, reactor: &ReactorHandle);

    /// The connection is gone: the peer hung up, a buffer cap fired, the
    /// idle timer expired, or the reactor is shutting down. Called exactly
    /// once per accepted connection; in-flight work for the connection
    /// should be cancelled here.
    fn on_close(&self, _conn: ConnId, _reason: CloseReason) {}
}

/// One connection's cross-thread half: the write buffer workers append to,
/// and the kill switch.
#[derive(Debug)]
struct ConnShared {
    out: Mutex<WriteBuffer>,
    /// Set (with a reason) to make the reactor close this connection at the
    /// next loop iteration.
    kill: Mutex<Option<CloseReason>>,
}

impl ConnShared {
    fn request_close(&self, reason: CloseReason) {
        let mut kill = self.kill.lock().expect("kill flag poisoned");
        if kill.is_none() {
            *kill = Some(reason);
        }
    }
}

#[derive(Debug)]
struct Shared {
    conns: Mutex<HashMap<ConnId, Arc<ConnShared>>>,
    waker: Waker,
    stopping: AtomicBool,
    open: AtomicUsize,
    write_cap: usize,
}

/// Cloneable handle for talking to a running reactor from any thread.
#[derive(Clone, Debug)]
pub struct ReactorHandle {
    shared: Arc<Shared>,
}

impl ReactorHandle {
    /// Queue `line` (newline appended) for delivery on `conn`. Returns
    /// `false` when the connection is already gone. When the append would
    /// exceed the connection's write-buffer cap the connection is marked
    /// for disconnect instead — a stalled reader never grows server memory
    /// past the cap.
    pub fn send(&self, conn: ConnId, line: &str) -> bool {
        let shared = {
            let conns = self.shared.conns.lock().expect("conn map poisoned");
            match conns.get(&conn) {
                Some(c) => c.clone(),
                None => return false,
            }
        };
        {
            let mut out = shared.out.lock().expect("write buffer poisoned");
            let mut pushed = out.push(line.as_bytes()).is_ok();
            if pushed {
                pushed = out.push(b"\n").is_ok();
            }
            if !pushed {
                WRITE_CAP_DISCONNECTS.inc();
                shared.request_close(CloseReason::WriteCapExceeded);
            }
        }
        self.shared.waker.wake();
        true
    }

    /// Ask the reactor to close `conn` after flushing what is already
    /// buffered.
    pub fn close(&self, conn: ConnId) {
        let conns = self.shared.conns.lock().expect("conn map poisoned");
        if let Some(c) = conns.get(&conn) {
            c.request_close(CloseReason::Requested);
        }
        drop(conns);
        self.shared.waker.wake();
    }

    /// Connections currently open on this reactor.
    pub fn open_connections(&self) -> usize {
        self.shared.open.load(Ordering::Relaxed)
    }

    /// Unflushed outbound bytes buffered for `conn` (`None` when gone).
    pub fn pending_write_bytes(&self, conn: ConnId) -> Option<usize> {
        let conns = self.shared.conns.lock().expect("conn map poisoned");
        conns
            .get(&conn)
            .map(|c| c.out.lock().expect("write buffer poisoned").len())
    }

    /// The configured per-connection write cap.
    pub fn write_buffer_cap(&self) -> usize {
        self.shared.write_cap
    }

    /// Begin shutdown: stop accepting, drain, close. [`Reactor::shutdown`]
    /// calls this and then joins the thread.
    pub fn begin_shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }
}

/// One live connection as seen by the reactor thread.
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    rbuf: ReadBuffer,
    last_inbound: Instant,
}

/// A running reactor; [`Reactor::shutdown`] (or drop) drains and joins it.
pub struct Reactor {
    handle: ReactorHandle,
    local_addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Take ownership of `listener` and serve it with `handler` on a new
    /// thread.
    pub fn start<H: Handler>(
        listener: TcpListener,
        handler: Arc<H>,
        config: ReactorConfig,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let poller = Poller::new()?;
        let shared = Arc::new(Shared {
            conns: Mutex::new(HashMap::new()),
            waker: poller.waker(),
            stopping: AtomicBool::new(false),
            open: AtomicUsize::new(0),
            write_cap: config.write_buffer_bytes,
        });
        let handle = ReactorHandle {
            shared: shared.clone(),
        };
        let loop_handle = handle.clone();
        let thread = std::thread::Builder::new()
            .name("spq-net-reactor".into())
            .spawn(move || {
                let mut state = LoopState {
                    listener,
                    poller,
                    handler,
                    config,
                    shared,
                    handle: loop_handle,
                    conns: HashMap::new(),
                    next_id: 1,
                };
                state.run();
            })?;
        Ok(Reactor {
            handle,
            local_addr,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A cloneable cross-thread handle.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Stop accepting, drain pending writes (bounded by
    /// [`ReactorConfig::drain_timeout`]), close every connection, and join
    /// the reactor thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.handle.begin_shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop();
    }
}

struct LoopState<H: Handler> {
    listener: TcpListener,
    poller: Poller,
    handler: Arc<H>,
    config: ReactorConfig,
    shared: Arc<Shared>,
    handle: ReactorHandle,
    conns: HashMap<ConnId, Conn>,
    next_id: ConnId,
}

impl<H: Handler> LoopState<H> {
    fn run(&mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            let stopping = self.shared.stopping.load(Ordering::SeqCst);
            if stopping && drain_started.is_none() {
                drain_started = Some(Instant::now());
            }
            if let Some(started) = drain_started {
                // Drain mode: flush what's buffered, close connections as
                // their buffers empty, force-close at the deadline.
                let deadline_hit = started.elapsed() >= self.config.drain_timeout;
                let ids: Vec<ConnId> = self.conns.keys().copied().collect();
                for id in ids {
                    let done = {
                        let conn = self.conns.get_mut(&id).expect("conn present");
                        let _ = flush_conn(conn);
                        conn.shared
                            .out
                            .lock()
                            .expect("write buffer poisoned")
                            .is_empty()
                    };
                    if done || deadline_hit {
                        self.close_conn(id, CloseReason::Requested);
                    }
                }
                if self.conns.is_empty() {
                    return;
                }
                // Wait for writability progress only.
                fds.clear();
                for conn in self.conns.values() {
                    fds.push(PollFd {
                        fd: conn.stream.as_raw_fd(),
                        events: POLLOUT,
                        revents: 0,
                    });
                }
                let _ = self.poller.wait(&mut fds, 50);
                continue;
            }

            // ---- build the interest set -------------------------------
            fds.clear();
            let mut order: Vec<Option<ConnId>> = Vec::new();
            // The listener stays in the interest set even at the connection
            // limit: over-limit clients are accepted and closed immediately
            // (a visible, counted rejection) instead of idling in the
            // kernel backlog.
            fds.push(PollFd {
                fd: self.listener.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
            order.push(None);
            for (&id, conn) in &self.conns {
                let mut events = POLLIN;
                if !conn
                    .shared
                    .out
                    .lock()
                    .expect("write buffer poisoned")
                    .is_empty()
                {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: conn.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                order.push(Some(id));
            }

            // A finite timeout bounds idle-reaping latency and guards
            // against a (theoretically) lost wake.
            let timeout_ms = match self.config.idle_timeout {
                Some(_) => 250,
                None => 1000,
            };
            if self.poller.wait(&mut fds, timeout_ms).is_err() {
                // poll failing outright (EBADF from a racing close) —
                // re-loop; individual fd errors surface as POLLNVAL next
                // round.
                continue;
            }

            // ---- dispatch readiness -----------------------------------
            for (slot, entry) in fds.iter().enumerate() {
                if entry.revents == 0 {
                    continue;
                }
                match order[slot] {
                    None => self.accept_ready(),
                    Some(id) => self.conn_ready(id, entry.revents),
                }
            }

            // ---- housekeeping: kill flags + idle timeout --------------
            let now = Instant::now();
            let mut to_close: Vec<(ConnId, CloseReason)> = Vec::new();
            for (&id, conn) in &self.conns {
                if let Some(reason) = *conn.shared.kill.lock().expect("kill flag poisoned") {
                    to_close.push((id, reason));
                } else if let Some(idle) = self.config.idle_timeout {
                    if now.duration_since(conn.last_inbound) >= idle {
                        IDLE_DISCONNECTS.inc();
                        to_close.push((id, CloseReason::IdleTimeout));
                    }
                }
            }
            for (id, reason) in to_close {
                // Give requested closes one last flush so already-queued
                // responses (e.g. an error message) reach the peer.
                if let Some(conn) = self.conns.get_mut(&id) {
                    let _ = flush_conn(conn);
                }
                self.close_conn(id, reason);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        LIMIT_REJECTS.inc();
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_id;
                    self.next_id += 1;
                    let shared = Arc::new(ConnShared {
                        out: Mutex::new(WriteBuffer::new(self.config.write_buffer_bytes)),
                        kill: Mutex::new(None),
                    });
                    self.shared
                        .conns
                        .lock()
                        .expect("conn map poisoned")
                        .insert(id, shared.clone());
                    self.shared.open.fetch_add(1, Ordering::Relaxed);
                    OPEN_CONNECTIONS.add(1);
                    ACCEPTS.inc();
                    self.conns.insert(
                        id,
                        Conn {
                            stream,
                            shared,
                            rbuf: ReadBuffer::new(self.config.read_buffer_bytes),
                            last_inbound: Instant::now(),
                        },
                    );
                    self.handler.on_open(id, peer);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, id: ConnId, revents: i16) {
        if revents & POLLNVAL != 0 {
            self.close_conn(id, CloseReason::PeerClosed);
            return;
        }
        // Read first: EOF/HUP detection is what makes disconnect-triggered
        // cancellation prompt, and POLLHUP can coincide with final bytes we
        // still want to parse.
        if revents & (POLLIN | POLLHUP | POLLERR) != 0 {
            if let Err(reason) = self.read_and_dispatch(id) {
                // Flush any error line the handler queued before we close.
                if let Some(conn) = self.conns.get_mut(&id) {
                    let _ = flush_conn(conn);
                }
                self.close_conn(id, reason);
                return;
            }
        }
        if revents & POLLOUT != 0 {
            if let Some(conn) = self.conns.get_mut(&id) {
                if flush_conn(conn).is_err() {
                    self.close_conn(id, CloseReason::PeerClosed);
                }
            }
        }
    }

    /// Drain the socket, pump complete lines into the handler, and flush
    /// whatever the handler queued. Returns the close reason if the
    /// connection is finished.
    fn read_and_dispatch(&mut self, id: ConnId) -> Result<(), CloseReason> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            let conn = match self.conns.get_mut(&id) {
                Some(c) => c,
                None => return Ok(()),
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => return Err(CloseReason::PeerClosed),
                Ok(n) => {
                    conn.last_inbound = Instant::now();
                    if conn.rbuf.extend(&chunk[..n]).is_err() {
                        READ_CAP_DISCONNECTS.inc();
                        return Err(CloseReason::ReadCapExceeded);
                    }
                    // Pump every complete line before the next read so the
                    // read buffer stays small for pipelined clients.
                    while let Some(line) = {
                        let conn = self.conns.get_mut(&id).expect("conn present");
                        conn.rbuf.next_line()
                    } {
                        if line.trim().is_empty() {
                            continue;
                        }
                        LINES.inc();
                        self.handler.on_line(id, &line, &self.handle);
                    }
                    // The handler may have queued responses or requested a
                    // close; opportunistically flush now instead of waiting
                    // for the next POLLOUT round-trip.
                    let conn = match self.conns.get_mut(&id) {
                        Some(c) => c,
                        None => return Ok(()),
                    };
                    if flush_conn(conn).is_err() {
                        return Err(CloseReason::PeerClosed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(CloseReason::PeerClosed),
            }
        }
    }

    fn close_conn(&mut self, id: ConnId, reason: CloseReason) {
        if let Some(conn) = self.conns.remove(&id) {
            self.shared
                .conns
                .lock()
                .expect("conn map poisoned")
                .remove(&id);
            self.shared.open.fetch_sub(1, Ordering::Relaxed);
            OPEN_CONNECTIONS.add(-1);
            drop(conn);
            self.handler.on_close(id, reason);
        }
    }
}

/// Write as much buffered output as the socket accepts. `Err` means the
/// connection is dead.
fn flush_conn(conn: &mut Conn) -> Result<(), ()> {
    let mut out = conn.shared.out.lock().expect("write buffer poisoned");
    while !out.is_empty() {
        match conn.stream.write(out.pending()) {
            Ok(0) => return Err(()),
            Ok(n) => out.advance(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}
