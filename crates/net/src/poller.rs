//! The readiness poller: `poll(2)` plus a cross-thread waker.
//!
//! [`Poller::wait`] blocks on an arbitrary fd set; [`Waker::wake`] (callable
//! from any thread) makes the current or next `wait` return immediately by
//! writing one byte down an internal nonblocking pipe. The poller is
//! deliberately low-level — interest lists are plain [`PollFd`] records —
//! and the [`crate::reactor`] module layers connection bookkeeping on top.

use crate::sys::{nonblocking_pipe, poll_fds, OwnedFd, PollFd, POLLIN};
use std::io;
use std::sync::Arc;

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
/// Cheap to clone; wakes coalesce (N wakes may be observed as one).
#[derive(Clone, Debug)]
pub struct Waker {
    write_end: Arc<OwnedFd>,
}

impl Waker {
    /// Interrupt the poller's current (or next) wait.
    pub fn wake(&self) {
        self.write_end.write_byte();
    }
}

/// A `poll(2)` wrapper owning the wake pipe.
#[derive(Debug)]
pub struct Poller {
    read_end: OwnedFd,
    waker: Waker,
}

impl Poller {
    /// Create a poller and its wake pipe.
    pub fn new() -> io::Result<Poller> {
        let (read_end, write_end) = nonblocking_pipe()?;
        Ok(Poller {
            read_end,
            waker: Waker {
                write_end: Arc::new(write_end),
            },
        })
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Block until some fd in `fds` is ready, a waker fires, or
    /// `timeout_ms` elapses (negative = forever). On return, `fds[i].revents`
    /// holds each fd's readiness; the result is `true` when a waker fired
    /// (already drained).
    pub fn wait(&self, fds: &mut Vec<PollFd>, timeout_ms: i32) -> io::Result<bool> {
        fds.push(PollFd {
            fd: self.read_end.0,
            events: POLLIN,
            revents: 0,
        });
        let result = poll_fds(fds, timeout_ms);
        let wake_entry = fds.pop().expect("wake fd entry");
        result?;
        let woken = wake_entry.revents & POLLIN != 0;
        if woken {
            self.read_end.drain();
        }
        Ok(woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let started = Instant::now();
        let mut fds = Vec::new();
        let woken = poller.wait(&mut fds, 10_000).unwrap();
        assert!(woken);
        assert!(started.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
        // Drained: the next wait times out instead of spinning.
        let woken = poller.wait(&mut fds, 10).unwrap();
        assert!(!woken);
    }
}
