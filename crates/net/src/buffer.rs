//! Per-connection byte buffers with hard caps.
//!
//! Both directions of a connection are buffered in memory, and both buffers
//! carry a **hard byte cap** set at accept time: a client that streams an
//! endless line without a newline, or that stops reading while the server
//! has responses to deliver, hits its cap and is disconnected. Memory per
//! connection is therefore bounded by configuration, never by client
//! behavior.

/// Error returned when an append would push a buffer past its cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapExceeded {
    /// The configured cap in bytes.
    pub cap: usize,
    /// Bytes the buffer would have needed to hold.
    pub needed: usize,
}

impl std::fmt::Display for CapExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "buffer cap exceeded: {} bytes needed, cap {}",
            self.needed, self.cap
        )
    }
}

impl std::error::Error for CapExceeded {}

/// Inbound buffer: accumulates socket reads and yields complete
/// newline-terminated lines.
#[derive(Debug)]
pub struct ReadBuffer {
    data: Vec<u8>,
    /// Bytes before `pos` are already-consumed line content awaiting
    /// compaction.
    pos: usize,
    cap: usize,
}

impl ReadBuffer {
    /// An empty buffer that refuses to hold more than `cap` un-consumed
    /// bytes (i.e. the longest admissible request line).
    pub fn new(cap: usize) -> Self {
        ReadBuffer {
            data: Vec::new(),
            pos: 0,
            cap: cap.max(1),
        }
    }

    /// Append freshly-read socket bytes. Fails when the unconsumed tail
    /// (a still-incomplete line) would exceed the cap.
    pub fn extend(&mut self, bytes: &[u8]) -> Result<(), CapExceeded> {
        self.compact();
        let needed = self.data.len() + bytes.len();
        if needed > self.cap {
            return Err(CapExceeded {
                cap: self.cap,
                needed,
            });
        }
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    /// The next complete line (without its terminator), or `None` when no
    /// full line is buffered. Lone `\r` before the newline is stripped.
    pub fn next_line(&mut self) -> Option<String> {
        let start = self.pos;
        let nl = self.data[start..].iter().position(|&b| b == b'\n')?;
        let mut end = start + nl;
        self.pos = end + 1;
        if end > start && self.data[end - 1] == b'\r' {
            end -= 1;
        }
        let line = String::from_utf8_lossy(&self.data[start..end]).into_owned();
        Some(line)
    }

    /// Unconsumed bytes currently resident.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Outbound buffer: responses queued for an edge-triggered flush.
#[derive(Debug)]
pub struct WriteBuffer {
    data: Vec<u8>,
    pos: usize,
    cap: usize,
}

impl WriteBuffer {
    /// An empty buffer refusing to hold more than `cap` unflushed bytes.
    pub fn new(cap: usize) -> Self {
        WriteBuffer {
            data: Vec::new(),
            pos: 0,
            cap: cap.max(1),
        }
    }

    /// Queue `bytes` for delivery. Fails (leaving the buffer untouched)
    /// when the unflushed total would exceed the cap — the caller must
    /// disconnect rather than buffer without bound for a reader that has
    /// stalled.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), CapExceeded> {
        if self.pos > 0 {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
        let needed = self.data.len() + bytes.len();
        if needed > self.cap {
            return Err(CapExceeded {
                cap: self.cap,
                needed,
            });
        }
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    /// The unflushed bytes (flush target).
    pub fn pending(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Record that the socket accepted `n` bytes of [`Self::pending`].
    pub fn advance(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.data.len());
        if self.pos == self.data.len() {
            self.data.clear();
            self.pos = 0;
        }
    }

    /// Unflushed byte count.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_buffer_splits_lines_and_strips_cr() {
        let mut buf = ReadBuffer::new(64);
        buf.extend(b"alpha\nbe").unwrap();
        assert_eq!(buf.next_line().as_deref(), Some("alpha"));
        assert_eq!(buf.next_line(), None);
        buf.extend(b"ta\r\ngamma\n").unwrap();
        assert_eq!(buf.next_line().as_deref(), Some("beta"));
        assert_eq!(buf.next_line().as_deref(), Some("gamma"));
        assert_eq!(buf.next_line(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn read_buffer_caps_an_endless_line() {
        let mut buf = ReadBuffer::new(8);
        buf.extend(b"12345678").unwrap();
        let err = buf.extend(b"9").unwrap_err();
        assert_eq!(err.cap, 8);
        assert_eq!(err.needed, 9);
        // Consuming a line frees the space again.
        let mut buf = ReadBuffer::new(8);
        buf.extend(b"1234567\n").unwrap();
        assert_eq!(buf.next_line().as_deref(), Some("1234567"));
        buf.extend(b"12345678").unwrap();
    }

    #[test]
    fn write_buffer_caps_and_flushes_incrementally() {
        let mut buf = WriteBuffer::new(10);
        buf.push(b"hello").unwrap();
        buf.push(b"world").unwrap();
        assert!(buf.push(b"!").is_err(), "cap reached");
        assert_eq!(buf.pending(), b"helloworld");
        buf.advance(4);
        assert_eq!(buf.pending(), b"oworld");
        // Partially-flushed bytes no longer count against the cap.
        buf.push(b"!!!!").unwrap();
        assert_eq!(buf.len(), 10);
        buf.advance(10);
        assert!(buf.is_empty());
        assert_eq!(buf.pending(), b"");
    }
}
