//! Deadline and cancellation behaviour of the evaluation pipeline.
//!
//! The historical behaviour this pins down: a Naïve solve whose wall-clock
//! budget expired *mid-LP* used to run that LP (and sometimes a full
//! validation pass) to completion before noticing — on the 2000-tuple
//! instance below a single SAA MILP runs for well over 20 s, so a 100 ms
//! budget used to overshoot by two orders of magnitude. With the deadline
//! threaded into the simplex pivot loops, expiry interrupts the solve within
//! a bounded number of pivots.

use spq_core::{Algorithm, SpqEngine, SpqOptions};
use spq_mcdb::vg::NormalNoise;
use spq_mcdb::{Relation, RelationBuilder};
use spq_solver::{CancellationToken, Deadline};
use std::time::{Duration, Instant};

/// A relation and query whose very first Naïve SAA MILP takes tens of
/// seconds: 2000 high-variance tuples and a near-boundary chance constraint.
fn heavy_relation(n: usize) -> Relation {
    let means: Vec<f64> = (0..n).map(|i| 4.0 + (i % 13) as f64 * 0.4).collect();
    let sds: Vec<f64> = (0..n).map(|i| 6.0 + (i % 7) as f64 * 1.5).collect();
    RelationBuilder::new("heavy")
        .deterministic_f64("price", vec![100.0; n])
        .stochastic("gain", NormalNoise::around(means, sds))
        .build()
        .unwrap()
}

const QUERY: &str = "SELECT PACKAGE(*) FROM heavy \
                     SUCH THAT SUM(price) <= 1000 AND \
                     SUM(gain) >= 30 WITH PROBABILITY >= 0.95 \
                     MAXIMIZE EXPECTED SUM(gain)";

fn heavy_options() -> SpqOptions {
    SpqOptions {
        initial_scenarios: 80,
        scenario_increment: 80,
        max_scenarios: 800,
        validation_scenarios: 2000,
        expectation_scenarios: 200,
        solver: spq_solver::SolverOptions {
            time_limit: Some(Duration::from_secs(600)),
            ..Default::default()
        },
        ..SpqOptions::for_tests()
    }
}

/// Generous ceiling for "the budget was respected": covers instance
/// preparation and scenario generation on a slow CI box, but is far below
/// the 20 s+ a single uninterrupted MILP takes here.
const OVERSHOOT_CEILING: Duration = Duration::from_secs(8);

#[test]
fn a_tiny_time_budget_does_not_overshoot_by_a_full_solve() {
    let rel = heavy_relation(2000);
    let mut opts = heavy_options();
    opts.time_limit = Some(Duration::from_millis(100));
    let engine = SpqEngine::new(opts);
    let started = Instant::now();
    let result = engine.evaluate(&rel, QUERY, Algorithm::Naive).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < OVERSHOOT_CEILING,
        "100ms budget overshot to {elapsed:?}"
    );
    assert!(result.stats.wall_time < OVERSHOOT_CEILING);
}

#[test]
fn cancellation_interrupts_an_evaluation_mid_solve() {
    let rel = heavy_relation(2000);
    let token = CancellationToken::new();
    let mut opts = heavy_options();
    opts.time_limit = Some(Duration::from_secs(600));
    opts.deadline = Deadline::none().with_token(token.clone());
    let engine = SpqEngine::new(opts);

    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            token.cancel();
        })
    };
    let started = Instant::now();
    let result = engine.evaluate(&rel, QUERY, Algorithm::Naive);
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    assert!(
        elapsed < OVERSHOOT_CEILING,
        "cancellation took {elapsed:?} to take effect"
    );
    // Cancellation is not an error: the engine reports whatever it had.
    let result = result.unwrap();
    assert!(result.stats.wall_time < OVERSHOOT_CEILING);
}

#[test]
fn an_unarmed_deadline_leaves_results_unchanged() {
    // The same query with and without an (un-expiring) deadline must produce
    // identical packages: deadline plumbing is observation-only.
    let rel = heavy_relation(40);
    let mut relaxed = SpqOptions::for_tests();
    relaxed.initial_scenarios = 10;
    relaxed.validation_scenarios = 400;
    let plain = SpqEngine::new(relaxed.clone())
        .evaluate(&rel, QUERY, Algorithm::SummarySearch)
        .unwrap();
    let mut armed = relaxed;
    armed.deadline =
        Deadline::within(Duration::from_secs(3600)).with_token(CancellationToken::new());
    let guarded = SpqEngine::new(armed)
        .evaluate(&rel, QUERY, Algorithm::SummarySearch)
        .unwrap();
    assert_eq!(plain.feasible, guarded.feasible);
    match (plain.package, guarded.package) {
        (Some(a), Some(b)) => {
            assert_eq!(a.multiplicities, b.multiplicities);
            assert_eq!(a.objective_estimate, b.objective_estimate);
        }
        (a, b) => assert_eq!(a.is_none(), b.is_none()),
    }
}
