//! Out-of-sample validation (Section 3.2): the blocked, parallel, one-pass
//! validation engine.
//!
//! A candidate package is *validation-feasible* when, for every probabilistic
//! constraint, it satisfies the inner constraint in at least `⌈p·M̂⌉` of `M̂`
//! out-of-sample scenarios. Validation is the step every CSA-Solve iteration
//! and every reported package goes through, and at the paper's scales
//! (`M̂ = 10⁶–10⁷`) it dominates evaluation cost — so this module treats it
//! as a first-class kernel:
//!
//! * **One pass.** Scenarios of each referenced stochastic column are
//!   realized exactly once per block, and *all* probabilistic constraints on
//!   that column (plus a probability objective, if the query has one) are
//!   scored against the same realized row. The pre-existing path re-realized
//!   the column once per constraint and allocated one `Vec` per scenario.
//! * **Blocked and parallel.** The `M̂` scenarios stream through
//!   fixed-size blocks ([`ValidationOptions::block_scenarios`]), and the
//!   block loop fans out across `std::thread` workers with the same
//!   contiguous-chunk policy as
//!   [`spq_mcdb::ScenarioGenerator::realize_matrix_with_threads`]. Because
//!   every `(column, tuple, scenario)` cell seeds its own RNG, the counts —
//!   and therefore every reported fraction — are **bit-identical at any
//!   thread count and any block size**.
//! * **Cache-backed.** When the evaluation carries a shared
//!   [`spq_mcdb::ScenarioCache`], realized validation blocks are memoized
//!   per `(relation, column, tuple set, scenario window)`, so re-validating
//!   the same package (e.g. the service's `validate` op, or CSA-Solve
//!   confirming a summary solution) touches the VG functions once.
//! * **Adaptive `M̂`.** With an [`EarlyStop`] policy, validation escalates
//!   through geometric stages (`initial_stage`, `2×`, `4×`, … up to `M̂`)
//!   and stops counting a constraint as soon as its verdict is settled —
//!   either *certainly* (the remaining scenarios cannot change the
//!   `⌈p·M̂⌉` comparison) or *statistically* (a Hoeffding bound puts the
//!   empirical fraction far from `p`). Stage boundaries depend only on the
//!   options, never on the thread count, so adaptive runs stay
//!   deterministic.
//! * **Interruptible.** The armed [`spq_solver::Deadline`] (wall-clock
//!   budget and/or cancellation token) is polled inside the block loop;
//!   an expiry mid-validation yields a report marked
//!   [`ValidationReport::interrupted`] instead of burning the rest of the
//!   budget.
//!
//! The final report a caller ships to a user is always anchored to the full
//! budget: the search loops (Naïve, CSA-Solve) validate intermediate
//! candidates adaptively and **confirm** an accepted package with a full-`M̂`
//! pass whenever its adaptive report stopped early.

mod engine;

use crate::bounds::{epsilon_upper_bound, omega_bounds, OmegaBounds};
use crate::error::SpqError;
use crate::instance::Instance;
use crate::silp::SilpObjective;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Default scenarios per realized block.
pub const DEFAULT_BLOCK_SCENARIOS: usize = 2048;

/// Default first adaptive stage (early-stop checks happen at
/// `initial_stage · 2^k` scenario milestones).
pub const DEFAULT_INITIAL_STAGE: usize = 1024;

/// Default two-sided confidence parameter of [`EarlyStop::Hoeffding`].
pub const DEFAULT_HOEFFDING_DELTA: f64 = 1e-9;

/// When (and how) validation may settle a constraint's verdict before
/// evaluating the full `M̂` budget.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum EarlyStop {
    /// Evaluate every scenario; no early decisions.
    #[default]
    Full,
    /// Stop a constraint only when its full-`M̂` verdict is already certain:
    /// `satisfied ≥ ⌈p·M̂⌉` (feasible — later scenarios cannot lower the
    /// count) or `satisfied + remaining < ⌈p·M̂⌉` (infeasible). Verdicts are
    /// exactly the full-budget verdicts.
    Certain,
    /// [`EarlyStop::Certain`] plus a statistical rule: after `n` scenarios
    /// with empirical fraction `f`, decide once `|f − p| ≥
    /// √(ln(2/δ) / 2n)` (Hoeffding). Decides far-from-`p` constraints after
    /// a few thousand scenarios regardless of `M̂`; each check is wrong with
    /// probability at most `δ`.
    Hoeffding {
        /// Per-check failure probability bound.
        delta: f64,
    },
}

impl EarlyStop {
    /// True when some early decision rule is active.
    pub fn enabled(&self) -> bool {
        !matches!(self, EarlyStop::Full)
    }

    /// Parse the wire spelling used by the service's `validate` op:
    /// `full`, `certain`, or `hoeffding` (with the default `δ`).
    pub fn from_wire(s: &str) -> Option<EarlyStop> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Some(EarlyStop::Full),
            "certain" => Some(EarlyStop::Certain),
            "hoeffding" => Some(EarlyStop::Hoeffding {
                delta: DEFAULT_HOEFFDING_DELTA,
            }),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn as_wire(&self) -> &'static str {
        match self {
            EarlyStop::Full => "full",
            EarlyStop::Certain => "certain",
            EarlyStop::Hoeffding { .. } => "hoeffding",
        }
    }
}

/// Tunables of one validation run.
#[derive(Debug, Clone)]
pub struct ValidationOptions {
    /// The out-of-sample budget `M̂`. Must be at least 1; a zero budget
    /// would make every constraint vacuously feasible and is rejected with
    /// an error.
    pub m_hat: usize,
    /// Scenarios per realized block (the streaming granularity).
    pub block_scenarios: usize,
    /// Worker threads for the block loop. `0` picks automatically (serial
    /// for small requests, the machine's parallelism otherwise), honoring a
    /// `SPQ_VALIDATION_THREADS` override from the environment. Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Early-stop policy for adaptive `M̂` escalation.
    pub early_stop: EarlyStop,
    /// First stage size of the adaptive escalation (subsequent stages
    /// double). Irrelevant under [`EarlyStop::Full`].
    pub initial_stage: usize,
    /// Whether the block loop honors the wall-clock part of the armed
    /// deadline (default `true`). The search loops set this to `false` for
    /// the **final certificate** validation of a candidate after the
    /// optimization budget ran out: the paper validates the returned
    /// package regardless, and one bounded pass beats reporting an
    /// unvalidated (conservatively infeasible) answer. A fired
    /// cancellation token *always* interrupts, whatever this is set to.
    pub honor_deadline: bool,
}

impl ValidationOptions {
    /// Full-budget validation of `m_hat` scenarios with default block size
    /// and automatic threading.
    pub fn full(m_hat: usize) -> Self {
        ValidationOptions {
            m_hat,
            block_scenarios: DEFAULT_BLOCK_SCENARIOS,
            threads: 0,
            early_stop: EarlyStop::Full,
            initial_stage: DEFAULT_INITIAL_STAGE,
            honor_deadline: true,
        }
    }

    /// Set the early-stop policy, returning `self` for chaining.
    pub fn with_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// Set the worker count, returning `self` for chaining.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the block size, returning `self` for chaining.
    pub fn with_block_scenarios(mut self, block: usize) -> Self {
        self.block_scenarios = block.max(1);
        self
    }

    /// Set whether the wall-clock deadline interrupts the block loop
    /// (cancellation tokens always do), returning `self` for chaining.
    pub fn with_honor_deadline(mut self, honor: bool) -> Self {
        self.honor_deadline = honor;
        self
    }
}

/// The smallest satisfied-scenario count that meets `Pr ≥ p` over `n`
/// scenarios: the least integer `c` with `c/n ≥ p`.
///
/// Computed with a tolerance so that an exactly integral `p·n` is not pushed
/// up by floating-point noise (e.g. `0.7 × 10` evaluates to
/// `7.000000000000001`, whose plain `ceil` would demand 8 of 10 scenarios).
pub fn required_successes(p: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let target = p * n as f64;
    let required = (target - 1e-9).ceil().max(0.0) as usize;
    required.min(n)
}

/// Validation outcome for one probabilistic constraint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstraintValidation {
    /// Index of the constraint in `silp.constraints`.
    pub constraint_index: usize,
    /// Target probability `p`.
    pub probability: f64,
    /// Fraction of the evaluated validation scenarios whose inner constraint
    /// held.
    pub satisfied_fraction: f64,
    /// The paper's `p`-surplus `r = satisfied_fraction − p`.
    pub surplus: f64,
    /// Whether the constraint is validation-feasible (`Y ≥ ⌈p·M̂⌉`, or the
    /// early-stop verdict standing in for it).
    pub feasible: bool,
    /// How many validation scenarios this constraint was scored against
    /// (less than `M̂` when an early-stop rule settled it, or when the run
    /// was interrupted).
    pub scenarios_evaluated: usize,
}

/// The result of validating a candidate package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// True when every probabilistic constraint is validation-feasible.
    pub feasible: bool,
    /// Per-probabilistic-constraint details.
    pub constraints: Vec<ConstraintValidation>,
    /// Estimated objective value of the package under validation data
    /// (expectations for linear objectives, satisfied fraction for
    /// probability objectives).
    pub objective_estimate: f64,
    /// The certificate `ε⁽q⁾` of Section 5.4 (`+∞` when no bound applies).
    pub epsilon_upper_bound: f64,
    /// Number of validation scenarios actually evaluated (the furthest any
    /// target was scored).
    pub scenarios_used: usize,
    /// The requested budget `M̂`.
    pub m_hat: usize,
    /// True when an early-stop rule settled at least one constraint before
    /// the full budget (i.e. `scenarios_used < m_hat`, or some constraint
    /// froze before the run's last stage).
    pub early_stopped: bool,
    /// True when the armed deadline expired (or the cancellation token
    /// fired) mid-run: verdicts and fractions then cover only the scenarios
    /// evaluated before the interruption.
    pub interrupted: bool,
}

impl ValidationReport {
    /// The worst (most negative) surplus across the probabilistic
    /// constraints; `0` when there are none.
    pub fn min_surplus(&self) -> f64 {
        if self.constraints.is_empty() {
            0.0
        } else {
            self.constraints
                .iter()
                .map(|c| c.surplus)
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// Validate a candidate package `x` (multiplicities over the candidate
/// tuples) against the **full** budget of `m_hat` out-of-sample scenarios.
///
/// Block size and worker count come from the instance's
/// [`crate::SpqOptions`]; the verdict and every reported fraction are
/// bit-identical for any thread count. `m_hat == 0` is an error.
pub fn validate(instance: &Instance<'_>, x: &[f64], m_hat: usize) -> Result<ValidationReport> {
    let opts = ValidationOptions {
        m_hat,
        block_scenarios: instance.options.validation_block,
        threads: instance.options.validation_threads,
        early_stop: EarlyStop::Full,
        initial_stage: DEFAULT_INITIAL_STAGE,
        honor_deadline: true,
    };
    validate_with(instance, x, &opts)
}

/// Validate a candidate package with explicit [`ValidationOptions`]
/// (threading, blocking, adaptive early stop).
pub fn validate_with(
    instance: &Instance<'_>,
    x: &[f64],
    options: &ValidationOptions,
) -> Result<ValidationReport> {
    let _span = spq_obs::span("validate");
    if options.m_hat == 0 {
        return Err(SpqError::InvalidArgument(
            "out-of-sample validation needs at least one scenario (m_hat == 0 would make \
             every probabilistic constraint vacuously feasible)"
                .into(),
        ));
    }
    let scan = engine::scan(instance, x, options)?;

    // Objective estimate.
    let objective_estimate = match &instance.silp.objective {
        SilpObjective::Linear { coeff, .. } => {
            let coeffs = instance.coefficients(coeff)?;
            coeffs.iter().zip(x).map(|(c, v)| c * v).sum()
        }
        SilpObjective::Probability { .. } => scan.objective_fraction.unwrap_or(0.0),
    };

    let bounds: OmegaBounds = omega_bounds(instance);
    let epsilon = epsilon_upper_bound(
        instance.silp.objective.direction(),
        objective_estimate,
        &bounds,
    );

    let feasible = scan.constraints.iter().all(|c| c.feasible);
    Ok(ValidationReport {
        feasible,
        constraints: scan.constraints,
        objective_estimate,
        epsilon_upper_bound: epsilon,
        scenarios_used: scan.scenarios_used,
        m_hat: options.m_hat,
        early_stopped: scan.early_stopped,
        interrupted: scan.interrupted,
    })
}

#[cfg(test)]
mod tests;
