//! The blocked one-pass scan behind [`super::validate_with`].
//!
//! Each referenced stochastic column is realized once per scenario block and
//! scored against every target (probabilistic constraint or probability
//! objective) that reads it. Blocks fan out across `std::thread` workers in
//! contiguous chunks; per-cell seeding makes the realized values — and the
//! integer satisfaction counts derived from them — identical for every
//! thread count and block size. Early-stop decisions happen only at stage
//! boundaries, which depend on the options alone, so adaptive runs are
//! deterministic too.

use super::{required_successes, ConstraintValidation, EarlyStop, ValidationOptions};
use crate::instance::Instance;
use crate::silp::{ConstraintKind, SilpObjective};
use crate::Result;
use spq_solver::Sense;
use std::num::NonZeroUsize;

/// Comparison tolerance when scoring an inner constraint against a scenario.
const SCORE_TOL: f64 = 1e-9;

/// Cells below which the automatic policy stays serial (mirrors
/// `spq_mcdb`'s threshold for matrix generation).
const PARALLEL_CELL_THRESHOLD: usize = 1 << 14;

/// Hard cap on worker threads, whatever the caller (or a network client,
/// via the service's `validate` op) asks for. Results are bit-identical at
/// any count, so capping can never change a report — it only bounds OS
/// thread creation.
const MAX_THREADS: usize = 64;

/// One satisfaction-counting target.
struct Target {
    /// `Some(index into silp.constraints)` for constraints, `None` for the
    /// probability objective.
    constraint_index: Option<usize>,
    /// Index into the scan's column list.
    column: usize,
    /// Inner comparison.
    sense: Sense,
    /// Inner right-hand side.
    rhs: f64,
    /// Target probability `p` (0 for the objective target).
    probability: f64,
    /// Scenarios satisfied so far.
    satisfied: usize,
    /// Scenarios scored so far.
    evaluated: usize,
    /// Early-stop verdict, once settled.
    decided: Option<bool>,
}

impl Target {
    fn is_constraint(&self) -> bool {
        self.constraint_index.is_some()
    }

    fn active(&self) -> bool {
        self.decided.is_none()
    }
}

/// What [`scan`] hands back to the report assembly.
pub(super) struct ScanResult {
    pub constraints: Vec<ConstraintValidation>,
    /// Satisfied fraction of the probability objective, if the query has one.
    pub objective_fraction: Option<f64>,
    pub scenarios_used: usize,
    pub early_stopped: bool,
    pub interrupted: bool,
}

/// Resolve the worker count: an explicit request wins, then the
/// `SPQ_VALIDATION_THREADS` environment override, then the automatic policy
/// (serial below [`PARALLEL_CELL_THRESHOLD`] cells, the machine's
/// parallelism above). Always clamped to the number of blocks.
fn effective_threads(requested: usize, cells: usize, blocks: usize) -> usize {
    let resolved = if requested > 0 {
        requested
    } else {
        match std::env::var("SPQ_VALIDATION_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => {
                if cells < PARALLEL_CELL_THRESHOLD {
                    1
                } else {
                    std::thread::available_parallelism()
                        .map(NonZeroUsize::get)
                        .unwrap_or(1)
                }
            }
        }
    };
    resolved.clamp(1, blocks.max(1)).min(MAX_THREADS)
}

/// Per-column scan outcome: satisfaction counts parallel to the target
/// spec list, scenarios actually scored, and whether the deadline fired.
struct ColumnScan {
    counts: Vec<usize>,
    done: usize,
    interrupted: bool,
}

/// Score one contiguous run of blocks serially.
fn scan_blocks(
    instance: &Instance<'_>,
    column: &str,
    support: &[usize],
    weights: &[f64],
    blocks: &[std::ops::Range<usize>],
    specs: &[(Sense, f64)],
    honor_deadline: bool,
) -> Result<ColumnScan> {
    let deadline = &instance.options.deadline;
    let mut counts = vec![0usize; specs.len()];
    let mut done = 0usize;
    let mut interrupted = false;
    for block in blocks {
        // The deadline is polled once per block, so a 10⁶-scenario
        // validation reacts to a cancel within one block's worth of work.
        // A deadline-exempt run (final certificate validation) still
        // honors the cancellation token.
        if deadline.is_cancelled() || (honor_deadline && deadline.expired()) {
            interrupted = true;
            break;
        }
        let matrix = instance.validation_matrix(column, support, block.clone())?;
        for j in 0..matrix.num_scenarios() {
            let row = matrix.scenario(j);
            // One realized row, one dot product, every target scored on it.
            let score: f64 = row.iter().zip(weights).map(|(s, w)| s * w).sum();
            for (k, &(sense, rhs)) in specs.iter().enumerate() {
                if sense.check(score, rhs, SCORE_TOL) {
                    counts[k] += 1;
                }
            }
        }
        done += matrix.num_scenarios();
    }
    Ok(ColumnScan {
        counts,
        done,
        interrupted,
    })
}

/// Scan `scenarios` of one column for the given targets, fanning blocks out
/// across workers. Counts are summed per block, so the result is identical
/// for every worker count.
fn scan_column(
    instance: &Instance<'_>,
    column: &str,
    support: &[usize],
    weights: &[f64],
    scenarios: std::ops::Range<usize>,
    specs: &[(Sense, f64)],
    options: &ValidationOptions,
) -> Result<ColumnScan> {
    let m = scenarios.len();
    if support.is_empty() {
        // The empty package scores 0 in every scenario: no realization
        // needed, the verdict per target is constant.
        let counts = specs
            .iter()
            .map(|&(sense, rhs)| {
                if sense.check(0.0, rhs, SCORE_TOL) {
                    m
                } else {
                    0
                }
            })
            .collect();
        return Ok(ColumnScan {
            counts,
            done: m,
            interrupted: false,
        });
    }

    let block = options.block_scenarios.max(1);
    let blocks: Vec<std::ops::Range<usize>> = {
        let mut out = Vec::with_capacity(m.div_ceil(block));
        let mut start = scenarios.start;
        while start < scenarios.end {
            let end = (start + block).min(scenarios.end);
            out.push(start..end);
            start = end;
        }
        out
    };
    let threads = effective_threads(options.threads, m * support.len(), blocks.len());
    let honor = options.honor_deadline;
    if threads == 1 {
        return scan_blocks(instance, column, support, weights, &blocks, specs, honor);
    }

    // Contiguous chunks of blocks per worker — the same policy
    // `realize_matrix_with_threads` applies to tuples.
    let chunk = blocks.len().div_ceil(threads);
    let partial: Vec<Result<ColumnScan>> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .chunks(chunk)
            .map(|mine| {
                scope.spawn(move || {
                    scan_blocks(instance, column, support, weights, mine, specs, honor)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("validation worker panicked"))
            .collect()
    });
    let mut merged = ColumnScan {
        counts: vec![0; specs.len()],
        done: 0,
        interrupted: false,
    };
    for part in partial {
        let part = part?;
        for (total, c) in merged.counts.iter_mut().zip(&part.counts) {
            *total += c;
        }
        merged.done += part.done;
        merged.interrupted |= part.interrupted;
    }
    Ok(merged)
}

/// Apply the early-stop rules to one undecided constraint target after a
/// completed stage.
fn decide(target: &mut Target, m_hat: usize, early_stop: EarlyStop) {
    let n = target.evaluated;
    if n == 0 {
        return;
    }
    let required = required_successes(target.probability, m_hat);
    // Certain rules: the full-budget comparison is already settled.
    if target.satisfied >= required {
        target.decided = Some(true);
        return;
    }
    if target.satisfied + (m_hat - n) < required {
        target.decided = Some(false);
        return;
    }
    if let EarlyStop::Hoeffding { delta } = early_stop {
        if n < m_hat {
            let fraction = target.satisfied as f64 / n as f64;
            let radius = ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt();
            if fraction - target.probability >= radius {
                target.decided = Some(true);
            } else if target.probability - fraction >= radius {
                target.decided = Some(false);
            }
        }
    }
}

/// Run the blocked scan: realize each referenced column once per block,
/// score every target in a single pass, escalate through adaptive stages.
pub(super) fn scan(
    instance: &Instance<'_>,
    x: &[f64],
    options: &ValidationOptions,
) -> Result<ScanResult> {
    let silp = &instance.silp;
    let m_hat = options.m_hat;

    // Package support: candidate positions with positive multiplicity.
    let support: Vec<usize> = x
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(i, _)| i)
        .collect();
    let weights: Vec<f64> = support.iter().map(|&i| x[i]).collect();

    // Collect targets and group them by referenced column.
    let mut columns: Vec<String> = Vec::new();
    let column_id = |name: &str, columns: &mut Vec<String>| -> usize {
        match columns.iter().position(|c| c == name) {
            Some(i) => i,
            None => {
                columns.push(name.to_string());
                columns.len() - 1
            }
        }
    };
    let mut targets: Vec<Target> = Vec::new();
    for (ci, c) in silp.constraints.iter().enumerate() {
        let ConstraintKind::Probabilistic { probability } = c.kind else {
            continue;
        };
        let column = c.coeff.column().ok_or_else(|| {
            crate::error::SpqError::Internal("probabilistic constraint without a column".into())
        })?;
        targets.push(Target {
            constraint_index: Some(ci),
            column: column_id(column, &mut columns),
            sense: c.sense,
            rhs: c.rhs,
            probability,
            satisfied: 0,
            evaluated: 0,
            decided: None,
        });
    }
    let mut objective_target: Option<usize> = None;
    if let SilpObjective::Probability {
        attribute,
        sense,
        threshold,
        ..
    } = &silp.objective
    {
        objective_target = Some(targets.len());
        targets.push(Target {
            constraint_index: None,
            column: column_id(attribute, &mut columns),
            sense: *sense,
            rhs: *threshold,
            probability: 0.0,
            satisfied: 0,
            evaluated: 0,
            decided: None,
        });
    }

    let has_constraints = targets.iter().any(Target::is_constraint);
    // Adaptive stages make sense only when a constraint can be decided
    // early; a probability *objective* is the deliverable and always runs
    // the full budget, so constraint-free scans take a single stage.
    let staged = options.early_stop.enabled() && has_constraints;
    let first_stage = options.initial_stage.max(1);

    let mut cursor = 0usize;
    let mut interrupted = false;
    while cursor < m_hat {
        let stage_end = if staged {
            let next = if cursor == 0 {
                first_stage
            } else {
                cursor.saturating_mul(2)
            };
            next.min(m_hat)
        } else {
            m_hat
        };

        for (cid, column) in columns.iter().enumerate() {
            let active: Vec<usize> = targets
                .iter()
                .enumerate()
                .filter(|(_, t)| t.column == cid && t.active())
                .map(|(i, _)| i)
                .collect();
            if active.is_empty() {
                continue;
            }
            let specs: Vec<(Sense, f64)> = active
                .iter()
                .map(|&i| (targets[i].sense, targets[i].rhs))
                .collect();
            let outcome = scan_column(
                instance,
                column,
                &support,
                &weights,
                cursor..stage_end,
                &specs,
                options,
            )?;
            for (k, &ti) in active.iter().enumerate() {
                targets[ti].satisfied += outcome.counts[k];
                targets[ti].evaluated += outcome.done;
            }
            interrupted |= outcome.interrupted;
        }
        if interrupted {
            break;
        }
        cursor = stage_end;

        if staged {
            for target in targets.iter_mut().filter(|t| t.is_constraint()) {
                if target.active() {
                    decide(target, m_hat, options.early_stop);
                }
            }
            // Once every constraint is settled, the only reason to keep
            // streaming is a probability objective (whose estimate uses the
            // full budget).
            let constraints_settled = targets
                .iter()
                .filter(|t| t.is_constraint())
                .all(|t| t.decided.is_some());
            if constraints_settled && objective_target.is_none() {
                break;
            }
        }
    }

    // Assemble per-constraint reports.
    let mut constraints = Vec::new();
    let mut early_stopped = false;
    for target in targets.iter().filter(|t| t.is_constraint()) {
        let ci = target.constraint_index.expect("constraint target");
        let n = target.evaluated;
        let fraction = if n == 0 {
            0.0
        } else {
            target.satisfied as f64 / n as f64
        };
        let feasible = match target.decided {
            Some(verdict) => verdict,
            None if n == m_hat => target.satisfied >= required_successes(target.probability, m_hat),
            // Interrupted before a verdict: judge the evaluated sample as if
            // it were the whole budget (an empty sample is conservatively
            // infeasible).
            None => n > 0 && target.satisfied >= required_successes(target.probability, n),
        };
        early_stopped |= n < m_hat && !interrupted;
        constraints.push(ConstraintValidation {
            constraint_index: ci,
            probability: target.probability,
            satisfied_fraction: fraction,
            surplus: fraction - target.probability,
            feasible,
            scenarios_evaluated: n,
        });
    }

    let objective_fraction = objective_target.map(|ti| {
        let t = &targets[ti];
        if t.evaluated == 0 {
            0.0
        } else {
            t.satisfied as f64 / t.evaluated as f64
        }
    });

    let scenarios_used = targets.iter().map(|t| t.evaluated).max().unwrap_or(0);
    Ok(ScanResult {
        constraints,
        objective_fraction,
        scenarios_used,
        early_stopped,
        interrupted,
    })
}
