use super::*;
use crate::options::SpqOptions;
use crate::silp::{CoeffSource, ConstraintKind, Direction, Silp, SilpConstraint};
use spq_mcdb::vg::{Degenerate, NormalNoise};
use spq_mcdb::{Relation, RelationBuilder};
use spq_solver::{Deadline, Sense};

fn relation() -> Relation {
    RelationBuilder::new("t")
        .deterministic_f64("price", vec![10.0, 20.0, 30.0])
        // Tuple gains: strongly positive, mildly positive, negative.
        .stochastic("gain", NormalNoise::around(vec![10.0, 1.0, -5.0], 1.0))
        .stochastic("fixed", Degenerate::new(vec![1.0, 2.0, 3.0]))
        .build()
        .unwrap()
}

fn silp_with_constraint(sense: Sense, rhs: f64, p: f64) -> Silp {
    Silp {
        relation: "t".into(),
        tuples: vec![0, 1, 2],
        repeat_bound: None,
        constraints: vec![SilpConstraint {
            name: "risk".into(),
            coeff: CoeffSource::Stochastic("gain".into()),
            sense,
            rhs,
            kind: ConstraintKind::Probabilistic { probability: p },
        }],
        objective: SilpObjective::Linear {
            direction: Direction::Maximize,
            coeff: CoeffSource::Stochastic("gain".into()),
            expectation: true,
        },
    }
}

#[test]
fn clearly_feasible_package_validates() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, 0.0, 0.9),
        SpqOptions::for_tests(),
    )
    .unwrap();
    // One copy of tuple 0 (mean gain 10, sd 1): Pr(gain >= 0) ~ 1.
    let report = validate(&inst, &[1.0, 0.0, 0.0], 2000).unwrap();
    assert!(report.feasible);
    assert_eq!(report.constraints.len(), 1);
    assert!(report.constraints[0].surplus > 0.05);
    assert!((report.objective_estimate - 10.0).abs() < 0.5);
    assert_eq!(report.scenarios_used, 2000);
    assert_eq!(report.m_hat, 2000);
    assert!(!report.early_stopped);
    assert!(!report.interrupted);
    assert_eq!(report.constraints[0].scenarios_evaluated, 2000);
}

#[test]
fn clearly_infeasible_package_fails_validation_with_negative_surplus() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, 0.0, 0.9),
        SpqOptions::for_tests(),
    )
    .unwrap();
    // Tuple 2 has mean gain -5: Pr(gain >= 0) ~ 0.
    let report = validate(&inst, &[0.0, 0.0, 1.0], 2000).unwrap();
    assert!(!report.feasible);
    assert!(report.constraints[0].surplus < -0.5);
    assert!(!report.constraints[0].feasible);
}

#[test]
fn borderline_package_has_surplus_near_zero() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        // Tuple 1 has mean 1, sd 1: Pr(gain >= 1) ~ 0.5.
        silp_with_constraint(Sense::Ge, 1.0, 0.5),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let report = validate(&inst, &[0.0, 1.0, 0.0], 4000).unwrap();
    assert!(report.constraints[0].surplus.abs() < 0.05);
}

#[test]
fn empty_package_scores_zero() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, -1.0, 0.9),
        SpqOptions::for_tests(),
    )
    .unwrap();
    // Empty package: score 0 >= -1 always -> feasible.
    let report = validate(&inst, &[0.0, 0.0, 0.0], 500).unwrap();
    assert!(report.feasible);
    assert_eq!(report.constraints[0].satisfied_fraction, 1.0);
    assert_eq!(report.objective_estimate, 0.0);

    // But with rhs 1 the empty package fails.
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, 1.0, 0.9),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let report = validate(&inst, &[0.0, 0.0, 0.0], 500).unwrap();
    assert!(!report.feasible);
}

#[test]
fn degenerate_column_gives_exact_fractions() {
    let rel = relation();
    let silp = Silp {
        relation: "t".into(),
        tuples: vec![0, 1, 2],
        repeat_bound: None,
        constraints: vec![SilpConstraint {
            name: "fixed".into(),
            coeff: CoeffSource::Stochastic("fixed".into()),
            sense: Sense::Le,
            rhs: 4.0,
            kind: ConstraintKind::Probabilistic { probability: 0.8 },
        }],
        objective: SilpObjective::Linear {
            direction: Direction::Minimize,
            coeff: CoeffSource::Stochastic("fixed".into()),
            expectation: true,
        },
    };
    let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
    // Package {tuple0: 2, tuple1: 1} has fixed score 2*1 + 2 = 4 <= 4 in
    // every scenario (degenerate), so the fraction is exactly 1.
    let report = validate(&inst, &[2.0, 1.0, 0.0], 300).unwrap();
    assert!(report.feasible);
    assert_eq!(report.constraints[0].satisfied_fraction, 1.0);
    assert_eq!(report.objective_estimate, 4.0);
    // Package {tuple2: 2} scores 6 > 4 in every scenario.
    let report = validate(&inst, &[0.0, 0.0, 2.0], 300).unwrap();
    assert_eq!(report.constraints[0].satisfied_fraction, 0.0);
    assert!(!report.feasible);
}

#[test]
fn probability_objective_estimate_is_a_fraction() {
    let rel = relation();
    let silp = Silp {
        relation: "t".into(),
        tuples: vec![0, 1, 2],
        repeat_bound: None,
        constraints: vec![],
        objective: SilpObjective::Probability {
            direction: Direction::Maximize,
            attribute: "gain".into(),
            sense: Sense::Ge,
            threshold: 5.0,
        },
    };
    let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
    // Tuple 0 (mean 10, sd 1): Pr(gain >= 5) ~ 1.
    let report = validate(&inst, &[1.0, 0.0, 0.0], 1000).unwrap();
    assert!(report.objective_estimate > 0.99);
    assert!(report.feasible); // no probabilistic constraints
    assert!(report.constraints.is_empty());
    assert_eq!(report.scenarios_used, 1000);
    // Tuple 2 (mean -5): Pr(gain >= 5) ~ 0.
    let report = validate(&inst, &[0.0, 0.0, 1.0], 1000).unwrap();
    assert!(report.objective_estimate < 0.01);
}

#[test]
fn multiple_probabilistic_constraints_all_validated() {
    let rel = relation();
    let mut silp = silp_with_constraint(Sense::Ge, 0.0, 0.9);
    silp.constraints.push(SilpConstraint {
        name: "cap".into(),
        coeff: CoeffSource::Stochastic("gain".into()),
        sense: Sense::Le,
        rhs: 20.0,
        kind: ConstraintKind::Probabilistic { probability: 0.9 },
    });
    let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
    let report = validate(&inst, &[1.0, 0.0, 0.0], 1000).unwrap();
    assert_eq!(report.constraints.len(), 2);
    assert!(report.feasible);
    // Both constraints hold with large surplus for one copy of tuple 0.
    assert!(report.constraints.iter().all(|c| c.surplus > 0.0));
}

// ---------------------------------------------------------------------------
// New: m̂ = 0, integral p·M̂ boundaries, threading, early stop, interruption.
// ---------------------------------------------------------------------------

#[test]
fn zero_scenario_budget_is_an_error_not_vacuous_feasibility() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, 100.0, 0.99),
        SpqOptions::for_tests(),
    )
    .unwrap();
    // This package is wildly infeasible; m̂ = 0 used to report it feasible.
    let err = validate(&inst, &[1.0, 0.0, 0.0], 0).unwrap_err();
    assert!(
        matches!(err, crate::SpqError::InvalidArgument(_)),
        "unexpected error: {err}"
    );
    assert!(err.to_string().contains("m_hat"));
}

#[test]
fn required_successes_handles_integral_products_exactly() {
    // 0.7 * 10 = 7.000000000000001 in f64: a plain ceil would demand 8.
    assert_eq!(required_successes(0.7, 10), 7);
    assert_eq!(required_successes(0.8, 10), 8);
    assert_eq!(required_successes(0.9, 10), 9);
    assert_eq!(required_successes(0.95, 10), 10);
    assert_eq!(required_successes(0.66, 3), 2);
    assert_eq!(required_successes(1.0, 7), 7);
    assert_eq!(required_successes(0.0, 7), 0);
    assert_eq!(required_successes(0.5, 0), 0);
    // Tiny but positive p still needs at least one success.
    assert_eq!(required_successes(0.001, 10), 1);
    // Exhaustive exact-rational sweep: p = k/n must require exactly k.
    for n in 1..=50usize {
        for k in 0..=n {
            let p = k as f64 / n as f64;
            assert_eq!(required_successes(p, n), k, "p = {k}/{n}");
        }
    }
}

/// Realize the validation stream for candidate position 1 and pick
/// thresholds that make *exactly* `want` of `m_hat` scenarios satisfy
/// `gain >= rhs`.
fn rhs_for_exact_count(inst: &Instance<'_>, m_hat: usize, want: usize) -> f64 {
    let rows = inst.validation_rows("gain", &[1], 0..m_hat).unwrap();
    let mut values: Vec<f64> = rows.iter().map(|r| r[0]).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // `gain >= rhs` holds for the top `want` values when rhs lies strictly
    // between values[m - want - 1] and values[m - want].
    assert!(want > 0 && want < m_hat);
    (values[m_hat - want - 1] + values[m_hat - want]) / 2.0
}

#[test]
fn integral_p_m_hat_boundary_is_exact() {
    let rel = relation();
    let probe = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, 0.0, 0.8),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let m_hat = 10;

    // Exactly 8 of 10 scenarios satisfied, p = 0.8: required = 8 -> feasible
    // with surplus exactly 0.
    let rhs8 = rhs_for_exact_count(&probe, m_hat, 8);
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, rhs8, 0.8),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let report = validate(&inst, &[0.0, 1.0, 0.0], m_hat).unwrap();
    assert!(report.feasible, "8/10 must meet p = 0.8 exactly");
    assert_eq!(report.constraints[0].satisfied_fraction, 0.8);
    assert_eq!(report.constraints[0].surplus, 0.0);

    // Exactly 7 of 10: one short of required -> infeasible.
    let rhs7 = rhs_for_exact_count(&probe, m_hat, 7);
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, rhs7, 0.8),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let report = validate(&inst, &[0.0, 1.0, 0.0], m_hat).unwrap();
    assert!(!report.feasible);
    assert_eq!(report.constraints[0].satisfied_fraction, 0.7);

    // p = 0.7 with exactly 7 of 10: the floating-point product 0.7·10 must
    // not round the requirement up to 8.
    let inst = Instance::new(
        &rel,
        silp_with_constraint(Sense::Ge, rhs7, 0.7),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let report = validate(&inst, &[0.0, 1.0, 0.0], m_hat).unwrap();
    assert!(report.feasible, "7/10 must meet p = 0.7 exactly");
    assert_eq!(report.constraints[0].surplus, 0.0);
}

#[test]
fn reports_are_bit_identical_across_threads_and_block_sizes() {
    let rel = relation();
    let mut silp = silp_with_constraint(Sense::Ge, 0.5, 0.6);
    silp.constraints.push(SilpConstraint {
        name: "cap".into(),
        coeff: CoeffSource::Stochastic("gain".into()),
        sense: Sense::Le,
        rhs: 24.0,
        kind: ConstraintKind::Probabilistic { probability: 0.85 },
    });
    let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
    let x = [2.0, 1.0, 0.0];
    let m_hat = 3001; // prime-ish so block boundaries land mid-stream
    let reference = validate_with(
        &inst,
        &x,
        &ValidationOptions::full(m_hat)
            .with_threads(1)
            .with_block_scenarios(m_hat),
    )
    .unwrap();
    for threads in [1, 2, 3, 8] {
        for block in [1, 7, 256, 2048, 5000] {
            let report = validate_with(
                &inst,
                &x,
                &ValidationOptions::full(m_hat)
                    .with_threads(threads)
                    .with_block_scenarios(block),
            )
            .unwrap();
            assert_eq!(report.feasible, reference.feasible);
            assert_eq!(report.scenarios_used, reference.scenarios_used);
            for (a, b) in report.constraints.iter().zip(&reference.constraints) {
                assert_eq!(
                    a.satisfied_fraction.to_bits(),
                    b.satisfied_fraction.to_bits(),
                    "threads {threads} block {block}"
                );
                assert_eq!(a.feasible, b.feasible);
            }
        }
    }
}

#[test]
fn certain_early_stop_preserves_the_full_verdict_and_saves_scenarios() {
    let rel = relation();
    // Degenerate column: the constraint holds in every scenario, so the
    // certain rule fires as soon as satisfied >= ceil(p · m̂).
    let silp = Silp {
        relation: "t".into(),
        tuples: vec![0, 1, 2],
        repeat_bound: None,
        constraints: vec![SilpConstraint {
            name: "fixed".into(),
            coeff: CoeffSource::Stochastic("fixed".into()),
            sense: Sense::Le,
            rhs: 4.0,
            kind: ConstraintKind::Probabilistic { probability: 0.5 },
        }],
        objective: SilpObjective::Linear {
            direction: Direction::Minimize,
            coeff: CoeffSource::Stochastic("fixed".into()),
            expectation: true,
        },
    };
    let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
    let m_hat = 100_000;
    let report = validate_with(
        &inst,
        &[2.0, 1.0, 0.0],
        &ValidationOptions::full(m_hat).with_early_stop(EarlyStop::Certain),
    )
    .unwrap();
    assert!(report.feasible);
    assert!(report.early_stopped);
    assert!(
        report.scenarios_used < m_hat,
        "certain rule should settle before the full budget ({} scenarios)",
        report.scenarios_used
    );
    // ceil(0.5 * 100000) = 50000 successes are needed before certainty.
    assert!(report.constraints[0].scenarios_evaluated >= 50_000);
}

#[test]
fn hoeffding_early_stop_decides_far_from_p_constraints_in_the_first_stages() {
    let rel = relation();
    let inst = Instance::new(
        &rel,
        // Pr(gain >= 0) ~ 1 for tuple 0, target p = 0.9: a huge margin.
        silp_with_constraint(Sense::Ge, 0.0, 0.9),
        SpqOptions::for_tests(),
    )
    .unwrap();
    let m_hat = 1_000_000;
    let report = validate_with(
        &inst,
        &[1.0, 0.0, 0.0],
        &ValidationOptions::full(m_hat).with_early_stop(EarlyStop::Hoeffding {
            delta: DEFAULT_HOEFFDING_DELTA,
        }),
    )
    .unwrap();
    assert!(report.feasible);
    assert!(report.early_stopped);
    assert!(
        report.scenarios_used <= 16_384,
        "a ~1.0 fraction against p = 0.9 should decide within a few stages, used {}",
        report.scenarios_used
    );
    // The verdict agrees with a (much smaller) full validation.
    let full = validate(&inst, &[1.0, 0.0, 0.0], 10_000).unwrap();
    assert_eq!(report.feasible, full.feasible);

    // And the symmetric rejection: tuple 2 fails almost surely.
    let report = validate_with(
        &inst,
        &[0.0, 0.0, 1.0],
        &ValidationOptions::full(m_hat).with_early_stop(EarlyStop::Hoeffding {
            delta: DEFAULT_HOEFFDING_DELTA,
        }),
    )
    .unwrap();
    assert!(!report.feasible);
    assert!(report.scenarios_used <= 16_384);
}

#[test]
fn expired_deadlines_interrupt_the_block_loop() {
    let rel = relation();
    let mut opts = SpqOptions::for_tests();
    opts.time_limit = None;
    opts.deadline = Deadline::within(std::time::Duration::ZERO);
    let inst = Instance::new(&rel, silp_with_constraint(Sense::Ge, 0.0, 0.9), opts).unwrap();
    let report = validate(&inst, &[1.0, 0.0, 0.0], 5000).unwrap();
    assert!(report.interrupted);
    assert!(
        !report.feasible,
        "an interrupted, unevaluated run is conservative"
    );
    assert_eq!(report.constraints[0].scenarios_evaluated, 0);

    // A cancellation token fires the same path.
    let token = spq_solver::CancellationToken::new();
    token.cancel();
    let mut opts = SpqOptions::for_tests();
    opts.time_limit = None;
    opts.deadline = Deadline::none().with_token(token);
    let inst = Instance::new(&rel, silp_with_constraint(Sense::Ge, 0.0, 0.9), opts).unwrap();
    let report = validate(&inst, &[1.0, 0.0, 0.0], 5000).unwrap();
    assert!(report.interrupted);
}

#[test]
fn certificate_validation_is_deadline_exempt_but_cancellable() {
    let rel = relation();
    // Wall-clock budget already spent: the certificate pass still runs to
    // completion.
    let mut opts = SpqOptions::for_tests();
    opts.time_limit = None;
    opts.deadline = Deadline::within(std::time::Duration::ZERO);
    let inst = Instance::new(&rel, silp_with_constraint(Sense::Ge, 0.0, 0.9), opts).unwrap();
    let report = validate_with(
        &inst,
        &[1.0, 0.0, 0.0],
        &inst.options.certificate_validation(),
    )
    .unwrap();
    assert!(!report.interrupted);
    assert!(report.feasible);
    assert_eq!(report.scenarios_used, inst.options.validation_scenarios);

    // A fired cancellation token interrupts even the exempt pass.
    let token = spq_solver::CancellationToken::new();
    token.cancel();
    let mut opts = SpqOptions::for_tests();
    opts.time_limit = None;
    opts.deadline = Deadline::none().with_token(token);
    let inst = Instance::new(&rel, silp_with_constraint(Sense::Ge, 0.0, 0.9), opts).unwrap();
    let report = validate_with(
        &inst,
        &[1.0, 0.0, 0.0],
        &inst.options.certificate_validation(),
    )
    .unwrap();
    assert!(report.interrupted);
}

#[test]
fn early_stop_wire_spellings_round_trip() {
    for stop in [
        EarlyStop::Full,
        EarlyStop::Certain,
        EarlyStop::Hoeffding {
            delta: DEFAULT_HOEFFDING_DELTA,
        },
    ] {
        assert_eq!(EarlyStop::from_wire(stop.as_wire()), Some(stop));
    }
    assert_eq!(EarlyStop::from_wire("CERTAIN"), Some(EarlyStop::Certain));
    assert_eq!(EarlyStop::from_wire("nope"), None);
    assert!(!EarlyStop::Full.enabled());
    assert!(EarlyStop::Certain.enabled());
}
