//! # spq-core — the stochastic package query engine
//!
//! This crate implements the primary contribution of *"Stochastic Package
//! Queries in Probabilistic Databases"* (SIGMOD 2020): in-database evaluation
//! of package queries with stochastic constraints and objectives over a
//! Monte Carlo probabilistic database.
//!
//! The pipeline is:
//!
//! 1. **Parse & bind** an sPaQL query ([`spq_spaql`]) against a Monte Carlo
//!    relation ([`spq_mcdb`]).
//! 2. **Translate** it into a stochastic integer linear program
//!    ([`silp::Silp`], [`translate()`]).
//! 3. **Evaluate** it with one of three algorithms:
//!    * [`naive`] — Algorithm 1, the SAA optimize/validate loop from the
//!      stochastic-programming literature;
//!    * [`summary_search`] — Algorithm 2, the paper's SummarySearch, which
//!      replaces the `M` scenarios of the SAA with `Z ≪ M` conservative
//!      *α-summaries* ([`summary`]), searches for minimally conservative
//!      summaries with CSA-Solve ([`csa_solve`], [`alpha`]), and certifies
//!      `(1 + ε)`-approximation via the bounds of [`bounds`];
//!    * [`Algorithm::SketchRefine`] — partition–sketch–refine evaluation for
//!      very large relations, provided by the separate `spq-sketch` crate
//!      and dispatched through [`register_sketch_refine`].
//! 4. **Validate** every candidate package out-of-sample with the blocked,
//!    parallel, one-pass validator ([`validation`]), optionally with
//!    adaptive `M̂` early stopping inside the search loops.
//!
//! The easiest entry point is [`SpqEngine`]:
//!
//! ```
//! use spq_core::{Algorithm, SpqEngine, SpqOptions};
//! use spq_mcdb::{RelationBuilder, vg::NormalNoise};
//!
//! let relation = RelationBuilder::new("stock_investments")
//!     .deterministic_f64("price", vec![100.0, 100.0, 100.0])
//!     .stochastic("Gain", NormalNoise::around(vec![5.0, 1.0, 0.3], vec![1.0, 0.3, 0.1]))
//!     .build()
//!     .unwrap();
//! let engine = SpqEngine::new(SpqOptions::for_tests());
//! let result = engine
//!     .evaluate(
//!         &relation,
//!         "SELECT PACKAGE(*) FROM stock_investments \
//!          SUCH THAT SUM(price) <= 200 AND \
//!          SUM(Gain) >= -1 WITH PROBABILITY >= 0.9 \
//!          MAXIMIZE EXPECTED SUM(Gain)",
//!         spq_core::Algorithm::SummarySearch,
//!     )
//!     .unwrap();
//! assert!(result.feasible);
//! ```

pub mod alpha;
pub mod bounds;
pub mod csa_solve;
pub mod engine;
pub mod error;
pub mod instance;
pub mod naive;
pub mod options;
pub mod package;
pub mod saa;
pub mod silp;
pub mod summary;
pub mod summary_search;
pub mod summary_stream;
pub mod translate;
pub mod validate;
pub mod validation;

pub use engine::{
    register_sketch_refine, sketch_refine_available, Algorithm, SketchRefineEvaluator, SpqEngine,
};
pub use error::SpqError;
pub use instance::Instance;
pub use options::{SketchOptions, SpqOptions};
pub use package::{EvaluationResult, EvaluationStats, Package};
pub use silp::{CoeffSource, ConstraintKind, Direction, Silp, SilpConstraint, SilpObjective};
pub use translate::translate;
pub use validation::{validate, validate_with, EarlyStop, ValidationOptions, ValidationReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpqError>;
