//! Formulation of deterministic ILPs from a SILP: the Sample Average
//! Approximation (SAA, Section 3.1) and the shared machinery reused by the
//! Conservative Summary Approximation (CSA, Section 4.1).
//!
//! Both formulations have the same structure:
//!
//! * one integer decision variable `x_i` per candidate tuple,
//! * deterministic / expectation constraints as plain linear constraints with
//!   coefficients taken from deterministic columns or expectation estimates,
//! * for each probabilistic constraint, one binary indicator `y_j` per
//!   *row* — a row is a scenario (SAA) or a summary (CSA) — with the
//!   indicator constraint `y_j = 1 ⇒ Σ_i row_j[i]·x_i ⊙ v`, and a counting
//!   constraint `Σ_j y_j ≥ required`,
//! * probability objectives handled by epigraphic rewriting: one indicator
//!   per row of the objective block, and the objective maximizes (or
//!   minimizes) the fraction of satisfied rows.

use crate::instance::Instance;
use crate::silp::{ConstraintKind, SilpObjective};
use crate::Result;
use spq_solver::{Model, Sense, VarId, VarType};

/// The realized rows approximating one probabilistic constraint.
#[derive(Debug, Clone)]
pub struct ProbBlock {
    /// Index of the probabilistic constraint in `silp.constraints`.
    pub constraint_index: usize,
    /// One coefficient row per scenario (SAA) or per summary (CSA).
    pub rows: Vec<Vec<f64>>,
    /// Minimum number of rows the package must satisfy (`⌈p·M⌉` or `⌈p·Z⌉`).
    pub required: usize,
}

impl ProbBlock {
    /// Build a block with `required = ⌈p · rows.len()⌉`, computed through
    /// [`crate::validation::required_successes`] so integral products are
    /// not rounded up by floating-point noise.
    pub fn with_probability(constraint_index: usize, rows: Vec<Vec<f64>>, p: f64) -> Self {
        let required = crate::validation::required_successes(p, rows.len());
        ProbBlock {
            constraint_index,
            rows,
            required,
        }
    }
}

/// Realized rows for a probability *objective* (epigraphic rewriting).
#[derive(Debug, Clone)]
pub struct ObjectiveBlock {
    /// One coefficient row per scenario/summary.
    pub rows: Vec<Vec<f64>>,
    /// Inner comparison of the probability objective.
    pub sense: Sense,
    /// Inner threshold of the probability objective.
    pub threshold: f64,
}

/// A formulated DILP together with its variable mapping.
#[derive(Debug, Clone)]
pub struct Formulation {
    /// The MILP handed to the solver.
    pub model: Model,
    /// Decision variables `x_i`, parallel to the candidate tuples.
    pub x_vars: Vec<VarId>,
    /// Per probabilistic block, the indicator variables `y_j`.
    pub indicator_vars: Vec<Vec<VarId>>,
    /// Indicator variables of the probability-objective block, if any.
    pub objective_indicators: Vec<VarId>,
}

impl Formulation {
    /// Extract the tuple multiplicities from a solver solution.
    pub fn multiplicities(&self, solution: &spq_solver::Solution) -> Vec<f64> {
        self.x_vars
            .iter()
            .map(|v| solution.value(*v).round().max(0.0))
            .collect()
    }

    /// Number of coefficients in the model (the paper's size measure).
    pub fn num_coefficients(&self) -> usize {
        self.model.num_coefficients()
    }
}

/// Build a DILP from an instance, the realized rows for each probabilistic
/// constraint, and (optionally) the realized rows for a probability
/// objective.
pub fn build_model(
    instance: &Instance<'_>,
    prob_blocks: &[ProbBlock],
    objective_block: Option<&ObjectiveBlock>,
) -> Result<Formulation> {
    let silp = &instance.silp;
    let n = silp.num_vars();
    let direction = silp.objective.direction();
    let mut model = match direction {
        crate::silp::Direction::Minimize => Model::minimize(),
        crate::silp::Direction::Maximize => Model::maximize(),
    };

    // Decision variables with their objective coefficients.
    let obj_coeffs: Vec<f64> = match &silp.objective {
        SilpObjective::Linear { coeff, .. } => instance.coefficients(coeff)?,
        SilpObjective::Probability { .. } => vec![0.0; n],
    };
    let bounds = instance.multiplicity_bounds();
    let floors = instance.multiplicity_floors();
    let mut x_vars = Vec::with_capacity(n);
    for i in 0..n {
        let x = model.add_var(
            format!("x{i}"),
            VarType::Integer,
            floors[i],
            bounds[i],
            obj_coeffs[i],
        );
        x_vars.push(x);
    }

    // Deterministic and expectation constraints.
    for (ci, c) in silp.constraints.iter().enumerate() {
        match c.kind {
            ConstraintKind::Probabilistic { .. } => continue,
            ConstraintKind::Deterministic | ConstraintKind::Expectation => {
                let coeffs = instance.coefficients(&c.coeff)?;
                let terms: Vec<(VarId, f64)> = x_vars
                    .iter()
                    .zip(&coeffs)
                    .filter(|(_, &co)| co != 0.0)
                    .map(|(x, &co)| (*x, co))
                    .collect();
                model.add_constraint(format!("{}_{ci}", c.name), terms, c.sense, c.rhs);
            }
        }
    }

    // Probabilistic constraint blocks.
    let mut indicator_vars = Vec::with_capacity(prob_blocks.len());
    for block in prob_blocks {
        let c = &silp.constraints[block.constraint_index];
        let mut ys = Vec::with_capacity(block.rows.len());
        for (j, row) in block.rows.iter().enumerate() {
            let y = model.add_var(
                format!("y_{}_{j}", block.constraint_index),
                VarType::Binary,
                0.0,
                1.0,
                0.0,
            );
            let terms: Vec<(VarId, f64)> = x_vars
                .iter()
                .zip(row)
                .filter(|(_, &co)| co != 0.0)
                .map(|(x, &co)| (*x, co))
                .collect();
            model.add_indicator(format!("{}_row{j}", c.name), y, true, terms, c.sense, c.rhs);
            ys.push(y);
        }
        model.add_constraint(
            format!("{}_count", c.name),
            ys.iter().map(|y| (*y, 1.0)).collect(),
            Sense::Ge,
            block.required as f64,
        );
        indicator_vars.push(ys);
    }

    // Probability objective (epigraphic rewriting): maximize/minimize the
    // fraction of satisfied rows.
    let mut objective_indicators = Vec::new();
    if let Some(ob) = objective_block {
        let weight = if ob.rows.is_empty() {
            0.0
        } else {
            1.0 / ob.rows.len() as f64
        };
        for (j, row) in ob.rows.iter().enumerate() {
            let y = model.add_var(format!("yobj_{j}"), VarType::Binary, 0.0, 1.0, weight);
            let terms: Vec<(VarId, f64)> = x_vars
                .iter()
                .zip(row)
                .filter(|(_, &co)| co != 0.0)
                .map(|(x, &co)| (*x, co))
                .collect();
            model.add_indicator(
                format!("obj_row{j}"),
                y,
                true,
                terms,
                ob.sense,
                ob.threshold,
            );
            objective_indicators.push(y);
        }
    }

    Ok(Formulation {
        model,
        x_vars,
        indicator_vars,
        objective_indicators,
    })
}

/// Formulate the full SAA `SAA_{Q,M}` with `m` optimization scenarios
/// (Section 3.1).
pub fn formulate_saa(instance: &Instance<'_>, m: usize) -> Result<Formulation> {
    let silp = &instance.silp;
    let mut blocks = Vec::new();
    for (ci, c) in silp.constraints.iter().enumerate() {
        if let ConstraintKind::Probabilistic { probability } = c.kind {
            let column = c.coeff.column().ok_or_else(|| {
                crate::error::SpqError::Internal("probabilistic constraint without a column".into())
            })?;
            let matrix = instance.optimization_matrix(column, m)?;
            let rows: Vec<Vec<f64>> = (0..m).map(|j| matrix.scenario(j).to_vec()).collect();
            blocks.push(ProbBlock::with_probability(ci, rows, probability));
        }
    }
    let objective_block = probability_objective_block(instance, m)?;
    build_model(instance, &blocks, objective_block.as_ref())
}

/// Formulate the probabilistically-unconstrained problem `Q0` used by
/// SummarySearch for its warm start `x⁽⁰⁾` (Algorithm 2, line 2).
///
/// Probabilistic constraints are dropped; a probability objective is still
/// approximated over `objective_scenarios` optimization scenarios.
pub fn formulate_unconstrained(
    instance: &Instance<'_>,
    objective_scenarios: usize,
) -> Result<Formulation> {
    let objective_block = probability_objective_block(instance, objective_scenarios)?;
    build_model(instance, &[], objective_block.as_ref())
}

/// Realize the objective block for probability objectives, if the SILP has
/// one.
pub fn probability_objective_block(
    instance: &Instance<'_>,
    m: usize,
) -> Result<Option<ObjectiveBlock>> {
    match &instance.silp.objective {
        SilpObjective::Probability {
            attribute,
            sense,
            threshold,
            ..
        } => {
            let matrix = instance.optimization_matrix(attribute, m)?;
            let rows: Vec<Vec<f64>> = (0..m).map(|j| matrix.scenario(j).to_vec()).collect();
            Ok(Some(ObjectiveBlock {
                rows,
                sense: *sense,
                threshold: *threshold,
            }))
        }
        SilpObjective::Linear { .. } => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, Direction, Silp, SilpConstraint};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::{Relation, RelationBuilder};
    use spq_solver::{solve_full, SolverOptions};

    fn relation() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![100.0, 200.0, 50.0, 75.0])
            .stochastic("gain", NormalNoise::around(vec![5.0, 12.0, 2.0, 4.0], 1.0))
            .build()
            .unwrap()
    }

    fn base_silp() -> Silp {
        Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "budget".into(),
                    coeff: CoeffSource::Deterministic("price".into()),
                    sense: Sense::Le,
                    rhs: 300.0,
                    kind: ConstraintKind::Deterministic,
                },
                SilpConstraint {
                    name: "risk".into(),
                    coeff: CoeffSource::Stochastic("gain".into()),
                    sense: Sense::Ge,
                    rhs: 0.0,
                    kind: ConstraintKind::Probabilistic { probability: 0.9 },
                },
            ],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn saa_has_one_indicator_per_scenario_and_a_counting_constraint() {
        let rel = relation();
        let inst = Instance::new(&rel, base_silp(), SpqOptions::for_tests()).unwrap();
        let m = 10;
        let f = formulate_saa(&inst, m).unwrap();
        assert_eq!(f.x_vars.len(), 4);
        assert_eq!(f.indicator_vars.len(), 1);
        assert_eq!(f.indicator_vars[0].len(), m);
        // ceil(0.9 * 10) = 9 scenarios must be satisfied.
        let counting = f
            .model
            .constraints()
            .iter()
            .find(|c| c.name.contains("count"))
            .unwrap();
        assert_eq!(counting.rhs, 9.0);
        // Size complexity Θ(NMK): indicators carry N coefficients each.
        assert!(f.num_coefficients() >= 4 * m);
    }

    #[test]
    fn saa_size_grows_linearly_in_m() {
        let rel = relation();
        let inst = Instance::new(&rel, base_silp(), SpqOptions::for_tests()).unwrap();
        let small = formulate_saa(&inst, 5).unwrap().num_coefficients();
        let large = formulate_saa(&inst, 20).unwrap().num_coefficients();
        assert!(large > 3 * small);
    }

    #[test]
    fn solving_the_saa_yields_a_feasible_package() {
        let rel = relation();
        let inst = Instance::new(&rel, base_silp(), SpqOptions::for_tests()).unwrap();
        let f = formulate_saa(&inst, 15).unwrap();
        let res = solve_full(&f.model, &SolverOptions::with_time_limit_secs(30)).unwrap();
        assert!(res.status.has_solution(), "status {:?}", res.status);
        let sol = res.solution.unwrap();
        let x = f.multiplicities(&sol);
        // Budget constraint must hold.
        let prices = [100.0, 200.0, 50.0, 75.0];
        let total: f64 = x.iter().zip(prices.iter()).map(|(a, b)| a * b).sum();
        assert!(total <= 300.0 + 1e-6);
        // With strongly positive gains, the optimal package is non-empty.
        assert!(x.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn unconstrained_formulation_drops_probabilistic_constraints() {
        let rel = relation();
        let inst = Instance::new(&rel, base_silp(), SpqOptions::for_tests()).unwrap();
        let f = formulate_unconstrained(&inst, 5).unwrap();
        assert!(f.indicator_vars.is_empty());
        assert!(f.model.indicators().is_empty());
        // Only the budget constraint remains.
        assert_eq!(f.model.constraints().len(), 1);
    }

    #[test]
    fn probability_objective_uses_indicator_fraction() {
        let rel = relation();
        let mut silp = base_silp();
        silp.constraints.truncate(1); // keep only the budget constraint
        silp.constraints.push(SilpConstraint {
            name: "size".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Le,
            rhs: 3.0,
            kind: ConstraintKind::Deterministic,
        });
        silp.objective = SilpObjective::Probability {
            direction: Direction::Maximize,
            attribute: "gain".into(),
            sense: Sense::Ge,
            threshold: 10.0,
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let f = formulate_saa(&inst, 8).unwrap();
        assert_eq!(f.objective_indicators.len(), 8);
        let res = solve_full(&f.model, &SolverOptions::with_time_limit_secs(30)).unwrap();
        assert!(res.status.has_solution());
        let sol = res.solution.unwrap();
        // The objective is a fraction of satisfied scenarios, hence in [0, 1].
        assert!(sol.objective >= -1e-9 && sol.objective <= 1.0 + 1e-9);
        // Tuple 1 has mean gain 12 > 10, so a package achieving a high
        // fraction exists; the solver should find a strictly positive value.
        assert!(sol.objective > 0.5, "objective {}", sol.objective);
    }

    #[test]
    fn prob_block_required_rounding() {
        let b = ProbBlock::with_probability(0, vec![vec![0.0]; 10], 0.95);
        assert_eq!(b.required, 10);
        let b = ProbBlock::with_probability(0, vec![vec![0.0]; 10], 0.9);
        assert_eq!(b.required, 9);
        let b = ProbBlock::with_probability(0, vec![vec![0.0]; 3], 0.66);
        assert_eq!(b.required, 2);
        let b = ProbBlock::with_probability(0, vec![vec![0.0]; 1], 0.95);
        assert_eq!(b.required, 1);
        // Integral products stay exact: 0.7 * 10 = 7.000000000000001 in
        // f64, whose naive ceil would demand 8 rows.
        let b = ProbBlock::with_probability(0, vec![vec![0.0]; 10], 0.7);
        assert_eq!(b.required, 7);
    }
}
