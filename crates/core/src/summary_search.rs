//! SummarySearch (Algorithm 2): query evaluation with conservative summary
//! approximations.
//!
//! SummarySearch first solves the probabilistically-unconstrained problem
//! `Q0` to obtain the least conservative warm start `x⁽⁰⁾`, then repeatedly
//! invokes CSA-Solve with the current number of optimization scenarios `M`
//! and summaries `Z`. A feasible, `(1 + ε)`-approximate solution terminates
//! the search; a feasible but insufficiently accurate solution increases `Z`
//! (more, less conservative summaries improve the objective); an infeasible
//! outcome increases `M` (more scenarios improve the summaries' coverage of
//! the uncertainty).
//!
//! Alongside the solution-level warm start `x⁽⁰⁾`, the search threads a
//! *basis-level* warm start through every MILP it triggers: the simplex
//! basis of each solve is carried into the next CSA-Solve invocation (and
//! across Z/M escalations), so re-solves of structurally identical models
//! restart from the previous optimal vertex.

use crate::csa_solve::{csa_solve, realize_matrices};
use crate::instance::Instance;
use crate::package::{EvaluationResult, EvaluationStats, Package};
use crate::saa::formulate_unconstrained;
use crate::silp::Direction;
use crate::Result;
use spq_solver::solve_full;
use std::time::Instant;

fn better(direction: Direction, candidate: f64, incumbent: f64) -> bool {
    match direction {
        Direction::Minimize => candidate < incumbent,
        Direction::Maximize => candidate > incumbent,
    }
}

/// Evaluate a stochastic package query with SummarySearch.
pub fn evaluate_summary_search(instance: &Instance<'_>) -> Result<EvaluationResult> {
    let opts = &instance.options;
    let start = Instant::now();
    let silp = &instance.silp;
    let direction = silp.objective.direction();

    let mut stats = EvaluationStats::default();
    // Basis carried across every solve this evaluation triggers (Q0, each
    // CSA-Solve, each Z/M escalation). The solver ignores it whenever the
    // model shape changed, so threading it unconditionally is safe.
    let mut basis: Option<spq_solver::Basis> = opts.solver.warm_start.clone();

    // --- Warm start: solve the probabilistically-unconstrained problem Q0. --
    let x0: Option<Vec<f64>> = {
        let objective_scenarios = opts.initial_scenarios.clamp(1, 50);
        let formulation = formulate_unconstrained(instance, objective_scenarios)?;
        stats.max_problem_coefficients = stats
            .max_problem_coefficients
            .max(formulation.num_coefficients());
        let mut solver_opts = opts.solver.clone();
        // Clone rather than move so the incumbent basis survives solves
        // that return none (e.g. a time-limited root relaxation).
        solver_opts.warm_start = basis.clone();
        let res = {
            let _span = spq_obs::span("milp");
            solve_full(&formulation.model, &solver_opts)?
        };
        stats.problems_solved += 1;
        stats.solver_nodes += res.nodes;
        stats.lp_pivots += res.lp_iterations;
        if res.basis.is_some() {
            basis = res.basis;
        }
        match res.status {
            spq_solver::SolveStatus::Infeasible => {
                // Even without probabilistic constraints there is no feasible
                // package: the query is infeasible outright.
                stats.wall_time = start.elapsed();
                return Ok(EvaluationResult {
                    package: None,
                    feasible: false,
                    stats,
                    final_basis: basis,
                });
            }
            _ => res.solution.map(|s| formulation.multiplicities(&s)),
        }
    };

    let mut m = opts.initial_scenarios.max(1);
    let mut z = opts.initial_summaries.clamp(1, m);
    let mut best: Option<Package> = None;
    let mut best_feasible = false;

    loop {
        // Armed by Instance::new from `time_limit` plus any cancellation
        // token; also polled inside every LP pivot loop downstream.
        if opts.deadline.expired() {
            break;
        }
        stats.outer_iterations += 1;
        stats.scenarios_used = m;
        stats.summaries_used = z;

        let matrices = {
            let _span = spq_obs::span("scenarios");
            realize_matrices(instance, m)?
        };
        let outcome = {
            let _span = spq_obs::span("csa_solve");
            csa_solve(instance, x0.as_deref(), &matrices, m, z, basis.as_ref())?
        };
        stats.problems_solved += outcome.problems_solved;
        stats.solver_nodes += outcome.solver_nodes;
        stats.lp_pivots += outcome.lp_pivots;
        stats.validations += outcome.iterations;
        stats.validation_scenarios += outcome.validation_scenarios;
        stats.max_problem_coefficients =
            stats.max_problem_coefficients.max(outcome.max_coefficients);
        if outcome.final_basis.is_some() {
            basis = outcome.final_basis.clone();
        }

        let report = outcome.validation.clone();
        let package = Package::from_dense(&outcome.x, &silp.tuples, report.clone());
        let replace = match &best {
            None => true,
            Some(b) => {
                (report.feasible && !best_feasible)
                    || (report.feasible == best_feasible
                        && better(direction, package.objective_estimate, b.objective_estimate))
            }
        };
        if replace {
            best_feasible = report.feasible;
            best = Some(package);
        }

        if report.feasible && report.epsilon_upper_bound <= opts.epsilon {
            // Feasible and (1 + ε)-approximate: done.
            break;
        } else if report.feasible && z < m {
            // Feasible but not accurate enough: use more (therefore less
            // conservative) summaries.
            z += opts.summary_increment.max(1).min(m - z);
        } else {
            // Infeasible (or Z already equals M): use more scenarios.
            let next = m + opts.scenario_increment.max(1);
            if next > opts.max_scenarios {
                break;
            }
            m = next;
            z = z.min(m);
        }
    }

    stats.wall_time = start.elapsed();
    Ok(EvaluationResult {
        feasible: best_feasible,
        package: best,
        stats,
        final_basis: basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, ConstraintKind, Silp, SilpConstraint, SilpObjective};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::{Relation, RelationBuilder};
    use spq_solver::Sense;

    /// High-mean/high-variance tuples alongside low-mean/low-variance ones:
    /// the unconstrained optimum is risky and must be repaired by the
    /// summaries.
    fn relation() -> Relation {
        let means = vec![6.0, 5.5, 5.0, 1.0, 0.9, 0.8, 0.7, 0.6];
        let sds = vec![8.0, 7.5, 7.0, 0.3, 0.3, 0.2, 0.2, 0.2];
        RelationBuilder::new("p")
            .deterministic_f64("price", vec![100.0; 8])
            .stochastic("gain", NormalNoise::around(means, sds))
            .build()
            .unwrap()
    }

    fn silp(p: f64, v: f64) -> Silp {
        Silp {
            relation: "p".into(),
            tuples: (0..8).collect(),
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "budget".into(),
                    coeff: CoeffSource::Deterministic("price".into()),
                    sense: Sense::Le,
                    rhs: 400.0,
                    kind: ConstraintKind::Deterministic,
                },
                SilpConstraint {
                    name: "risk".into(),
                    coeff: CoeffSource::Stochastic("gain".into()),
                    sense: Sense::Ge,
                    rhs: v,
                    kind: ConstraintKind::Probabilistic { probability: p },
                },
            ],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn summary_search_finds_a_feasible_package() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 25;
        opts.validation_scenarios = 800;
        let inst = Instance::new(&rel, silp(0.9, 0.0), opts).unwrap();
        let result = evaluate_summary_search(&inst).unwrap();
        assert!(result.feasible, "stats: {:?}", result.stats);
        let package = result.package.unwrap();
        assert!(package.is_feasible());
        assert!(package.size() > 0);
        assert!(package.size() <= 4); // budget 400 / price 100
        assert_eq!(result.stats.summaries_used, 1);
        assert!(result.stats.validation_scenarios > 0);
        // The winning package's report covers the full out-of-sample budget
        // (adaptive validation confirms accepted candidates).
        assert!(!package.validation.early_stopped);
        assert_eq!(package.validation.scenarios_used, 800);
    }

    #[test]
    fn summary_search_declares_failure_on_an_impossible_query() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 10;
        opts.scenario_increment = 10;
        opts.max_scenarios = 20;
        opts.validation_scenarios = 300;
        // Gain >= 200 with probability 0.95 is impossible with 4 tuples.
        let inst = Instance::new(&rel, silp(0.95, 200.0), opts).unwrap();
        let result = evaluate_summary_search(&inst).unwrap();
        assert!(!result.feasible);
    }

    #[test]
    fn infeasible_deterministic_constraints_short_circuit() {
        let rel = relation();
        let mut s = silp(0.9, 0.0);
        // COUNT(*) >= 100 cannot be met with a budget of 400 / price 100.
        s.constraints.push(SilpConstraint {
            name: "impossible".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Ge,
            rhs: 100.0,
            kind: ConstraintKind::Deterministic,
        });
        let inst = Instance::new(&rel, s, SpqOptions::for_tests()).unwrap();
        let result = evaluate_summary_search(&inst).unwrap();
        assert!(!result.feasible);
        assert!(result.package.is_none());
        // It detected infeasibility at the warm-start stage, without any
        // CSA iterations.
        assert_eq!(result.stats.outer_iterations, 0);
    }

    #[test]
    fn reduced_problems_stay_small_compared_to_saa() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 40;
        opts.validation_scenarios = 500;
        let inst = Instance::new(&rel, silp(0.9, 0.0), opts).unwrap();
        let saa_size = crate::saa::formulate_saa(&inst, 40)
            .unwrap()
            .num_coefficients();
        let result = evaluate_summary_search(&inst).unwrap();
        assert!(result.feasible);
        assert!(
            result.stats.max_problem_coefficients < saa_size,
            "summary search max {} vs SAA {}",
            result.stats.max_problem_coefficients,
            saa_size
        );
    }
}
