//! The stochastic integer linear program (SILP) representation.
//!
//! A stochastic package query is translated into a SILP (Section 2.3): one
//! nonnegative integer decision variable per candidate tuple, linear
//! constraints that are deterministic, expectations, or probabilistic, and a
//! linear objective in canonical form (probability objectives are kept
//! symbolic here and handled by epigraphic rewriting at formulation time).

use serde::{Deserialize, Serialize};
use spq_solver::Sense;

/// Where the per-tuple coefficients of a constraint or objective come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoeffSource {
    /// The same constant for every tuple (e.g. `COUNT(*)` uses 1).
    Constant(f64),
    /// A deterministic column of the relation.
    Deterministic(String),
    /// A stochastic column of the relation (a random variable per tuple).
    Stochastic(String),
}

impl CoeffSource {
    /// The referenced column name, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            CoeffSource::Constant(_) => None,
            CoeffSource::Deterministic(c) | CoeffSource::Stochastic(c) => Some(c),
        }
    }

    /// True when the coefficients are random variables.
    pub fn is_stochastic(&self) -> bool {
        matches!(self, CoeffSource::Stochastic(_))
    }
}

/// The nature of a SILP constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// `sum_i c_i x_i ⊙ v` with deterministic coefficients.
    Deterministic,
    /// `E[sum_i ξ_i x_i] ⊙ v`.
    Expectation,
    /// `Pr(sum_i ξ_i x_i ⊙ v) >= p` — a probabilistic (chance) constraint.
    Probabilistic {
        /// The probability bound `p`.
        probability: f64,
    },
}

impl ConstraintKind {
    /// True for probabilistic constraints.
    pub fn is_probabilistic(&self) -> bool {
        matches!(self, ConstraintKind::Probabilistic { .. })
    }
}

/// One SILP constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SilpConstraint {
    /// Diagnostic name.
    pub name: String,
    /// Coefficient source for the inner function `sum_i coeff_i x_i`.
    pub coeff: CoeffSource,
    /// Inner comparison `⊙` (the paper restricts probabilistic inner
    /// constraints to `<=` / `>=`).
    pub sense: Sense,
    /// The right-hand side `v`.
    pub rhs: f64,
    /// Deterministic, expectation, or probabilistic.
    pub kind: ConstraintKind,
}

impl SilpConstraint {
    /// The probability bound, for probabilistic constraints.
    pub fn probability(&self) -> Option<f64> {
        match self.kind {
            ConstraintKind::Probabilistic { probability } => Some(probability),
            _ => None,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

impl Direction {
    /// Convert to the solver's direction type.
    pub fn to_solver(self) -> spq_solver::Direction {
        match self {
            Direction::Minimize => spq_solver::Direction::Minimize,
            Direction::Maximize => spq_solver::Direction::Maximize,
        }
    }

    /// `1.0` for minimization, `-1.0` for maximization (used to convert to a
    /// canonical minimization sense).
    pub fn sign(self) -> f64 {
        match self {
            Direction::Minimize => 1.0,
            Direction::Maximize => -1.0,
        }
    }
}

/// The SILP objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SilpObjective {
    /// `min/max (E[]) sum_i coeff_i x_i`; when `expectation` is true and the
    /// coefficients are stochastic the canonical form uses `E[ξ_i]`.
    Linear {
        /// Optimization direction.
        direction: Direction,
        /// Coefficient source.
        coeff: CoeffSource,
        /// Whether the objective is wrapped in an expectation.
        expectation: bool,
    },
    /// `min/max Pr(sum_i ξ_i x_i ⊙ v)` — handled by epigraphic rewriting
    /// (Section 2.3): in the SAA/CSA this becomes optimizing the fraction of
    /// scenarios/summaries whose inner constraint holds.
    Probability {
        /// Optimization direction.
        direction: Direction,
        /// Stochastic column of the inner sum.
        attribute: String,
        /// Inner comparison.
        sense: Sense,
        /// Inner right-hand side.
        threshold: f64,
    },
}

impl SilpObjective {
    /// The optimization direction.
    pub fn direction(&self) -> Direction {
        match self {
            SilpObjective::Linear { direction, .. }
            | SilpObjective::Probability { direction, .. } => *direction,
        }
    }

    /// True for probability objectives.
    pub fn is_probability(&self) -> bool {
        matches!(self, SilpObjective::Probability { .. })
    }

    /// The stochastic/deterministic column the objective reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            SilpObjective::Linear { coeff, .. } => coeff.column(),
            SilpObjective::Probability { attribute, .. } => Some(attribute),
        }
    }
}

/// A stochastic integer linear program over the candidate tuples of a
/// relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Silp {
    /// Name of the underlying relation (diagnostics only).
    pub relation: String,
    /// Candidate tuple indices (into the relation) after `WHERE` filtering.
    /// Decision variable `x_k` corresponds to tuple `tuples[k]`.
    pub tuples: Vec<usize>,
    /// Per-tuple multiplicity upper bound (`REPEAT l` gives `l + 1`);
    /// `None` leaves the multiplicity bounded only by the constraints.
    pub repeat_bound: Option<u32>,
    /// The constraints.
    pub constraints: Vec<SilpConstraint>,
    /// The objective.
    pub objective: SilpObjective,
}

impl Silp {
    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.tuples.len()
    }

    /// The probabilistic constraints, in declaration order.
    pub fn probabilistic_constraints(&self) -> Vec<&SilpConstraint> {
        self.constraints
            .iter()
            .filter(|c| c.kind.is_probabilistic())
            .collect()
    }

    /// The deterministic and expectation constraints.
    pub fn non_probabilistic_constraints(&self) -> Vec<&SilpConstraint> {
        self.constraints
            .iter()
            .filter(|c| !c.kind.is_probabilistic())
            .collect()
    }

    /// A copy of this SILP with every probabilistic constraint removed — the
    /// paper's `Q0`, used by SummarySearch to compute the least conservative
    /// solution `x⁽⁰⁾`.
    pub fn without_probabilistic_constraints(&self) -> Silp {
        Silp {
            constraints: self
                .constraints
                .iter()
                .filter(|c| !c.kind.is_probabilistic())
                .cloned()
                .collect(),
            ..self.clone()
        }
    }

    /// All stochastic columns referenced by the SILP (constraints and
    /// objective), deduplicated.
    pub fn stochastic_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        let mut push = |c: Option<&str>, stochastic: bool| {
            if stochastic {
                if let Some(c) = c {
                    if !cols.iter().any(|existing| existing == c) {
                        cols.push(c.to_string());
                    }
                }
            }
        };
        for c in &self.constraints {
            push(c.coeff.column(), c.coeff.is_stochastic());
        }
        match &self.objective {
            SilpObjective::Linear { coeff, .. } => push(coeff.column(), coeff.is_stochastic()),
            SilpObjective::Probability { attribute, .. } => push(Some(attribute), true),
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_silp() -> Silp {
        Silp {
            relation: "stock_investments".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "budget".into(),
                    coeff: CoeffSource::Deterministic("price".into()),
                    sense: Sense::Le,
                    rhs: 1000.0,
                    kind: ConstraintKind::Deterministic,
                },
                SilpConstraint {
                    name: "var".into(),
                    coeff: CoeffSource::Stochastic("Gain".into()),
                    sense: Sense::Ge,
                    rhs: -10.0,
                    kind: ConstraintKind::Probabilistic { probability: 0.95 },
                },
            ],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("Gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn partitions_constraints_by_kind() {
        let s = sample_silp();
        assert_eq!(s.num_vars(), 4);
        assert_eq!(s.probabilistic_constraints().len(), 1);
        assert_eq!(s.non_probabilistic_constraints().len(), 1);
        assert_eq!(s.probabilistic_constraints()[0].probability(), Some(0.95));
        assert_eq!(s.non_probabilistic_constraints()[0].probability(), None);
    }

    #[test]
    fn q0_removes_probabilistic_constraints() {
        let s = sample_silp();
        let q0 = s.without_probabilistic_constraints();
        assert_eq!(q0.constraints.len(), 1);
        assert!(!q0.constraints[0].kind.is_probabilistic());
        assert_eq!(q0.tuples, s.tuples);
        assert_eq!(q0.objective, s.objective);
    }

    #[test]
    fn stochastic_columns_are_deduplicated() {
        let s = sample_silp();
        assert_eq!(s.stochastic_columns(), vec!["Gain".to_string()]);
    }

    #[test]
    fn coeff_source_accessors() {
        assert_eq!(CoeffSource::Constant(1.0).column(), None);
        assert!(!CoeffSource::Constant(1.0).is_stochastic());
        assert_eq!(
            CoeffSource::Deterministic("price".into()).column(),
            Some("price")
        );
        assert!(CoeffSource::Stochastic("gain".into()).is_stochastic());
    }

    #[test]
    fn direction_helpers() {
        assert_eq!(Direction::Minimize.sign(), 1.0);
        assert_eq!(Direction::Maximize.sign(), -1.0);
        assert_eq!(
            Direction::Maximize.to_solver(),
            spq_solver::Direction::Maximize
        );
    }

    #[test]
    fn objective_accessors() {
        let s = sample_silp();
        assert_eq!(s.objective.direction(), Direction::Maximize);
        assert!(!s.objective.is_probability());
        assert_eq!(s.objective.column(), Some("Gain"));
        let p = SilpObjective::Probability {
            direction: Direction::Maximize,
            attribute: "Revenue".into(),
            sense: Sense::Ge,
            threshold: 1000.0,
        };
        assert!(p.is_probability());
        assert_eq!(p.column(), Some("Revenue"));
    }
}
