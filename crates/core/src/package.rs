//! Package results: the answer to a stochastic package query.

use crate::validate::ValidationReport;
use serde::{Deserialize, Serialize};
use spq_mcdb::Relation;
use std::fmt;
use std::time::Duration;

/// A package: tuple multiplicities over the input relation together with the
/// validation metadata that certifies (or refutes) its feasibility.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Package {
    /// `(relation tuple index, multiplicity)` pairs for tuples with positive
    /// multiplicity, sorted by tuple index.
    pub multiplicities: Vec<(usize, u32)>,
    /// Estimated objective value (expectation or probability, per the query).
    pub objective_estimate: f64,
    /// The out-of-sample validation report.
    pub validation: ValidationReport,
}

impl Package {
    /// Build a package from a dense multiplicity vector over candidate
    /// positions and the mapping back to relation tuple indices.
    pub fn from_dense(x: &[f64], tuples: &[usize], validation: ValidationReport) -> Package {
        let mut multiplicities: Vec<(usize, u32)> = x
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.5)
            .map(|(pos, &v)| (tuples[pos], v.round() as u32))
            .collect();
        multiplicities.sort_unstable();
        Package {
            multiplicities,
            objective_estimate: validation.objective_estimate,
            validation,
        }
    }

    /// Total number of tuples in the package, counting multiplicity.
    pub fn size(&self) -> u32 {
        self.multiplicities.iter().map(|(_, m)| m).sum()
    }

    /// Number of distinct tuples in the package.
    pub fn num_distinct(&self) -> usize {
        self.multiplicities.len()
    }

    /// True when the package is validation-feasible.
    pub fn is_feasible(&self) -> bool {
        self.validation.feasible
    }

    /// Render the package as a small table using the given relation for
    /// deterministic attribute values (similar to Figure 1's output).
    pub fn describe(&self, relation: &Relation) -> String {
        let mut out = String::new();
        let det_cols = relation.schema().deterministic_columns();
        out.push_str(&format!(
            "Package ({} tuples, {} distinct, objective ~ {:.4}, {}):\n",
            self.size(),
            self.num_distinct(),
            self.objective_estimate,
            if self.is_feasible() {
                "validation-feasible"
            } else {
                "NOT validation-feasible"
            }
        ));
        for (tuple, mult) in &self.multiplicities {
            let values: Vec<String> = det_cols
                .iter()
                .map(|c| {
                    relation
                        .value(c, *tuple)
                        .map(|v| format!("{c}={v}"))
                        .unwrap_or_default()
                })
                .collect();
            out.push_str(&format!(
                "  x{mult}  tuple {tuple}: {}\n",
                values.join(", ")
            ));
        }
        out
    }
}

impl fmt::Display for Package {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "package of {} tuples ({} distinct), objective ~ {:.4}",
            self.size(),
            self.num_distinct(),
            self.objective_estimate
        )
    }
}

/// Statistics describing one end-to-end query evaluation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvaluationStats {
    /// Wall-clock time of the whole evaluation.
    pub wall_time: Duration,
    /// Final number of optimization scenarios `M`.
    pub scenarios_used: usize,
    /// Final number of summaries `Z` (0 for Naïve).
    pub summaries_used: usize,
    /// Number of outer optimize/validate iterations.
    pub outer_iterations: usize,
    /// Number of DILPs solved (including CSA-Solve inner iterations).
    pub problems_solved: usize,
    /// Number of validation passes.
    pub validations: usize,
    /// Total out-of-sample scenarios evaluated across those passes (adaptive
    /// early stopping makes this visibly smaller than
    /// `validations × M̂`).
    pub validation_scenarios: usize,
    /// Total branch-and-bound nodes across all solves.
    pub solver_nodes: usize,
    /// Total simplex pivots across every LP relaxation of every solve —
    /// the backend-independent work measure that makes warm-start savings
    /// visible even when wall clock is noisy.
    pub lp_pivots: usize,
    /// Number of coefficients of the largest DILP formulated (the paper's
    /// problem-size measure).
    pub max_problem_coefficients: usize,
}

/// The outcome of evaluating a stochastic package query with one algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// The best package found (feasible when `feasible` is true; possibly an
    /// infeasible best-effort package otherwise).
    pub package: Option<Package>,
    /// Whether a validation-feasible package was found.
    pub feasible: bool,
    /// Evaluation statistics.
    pub stats: EvaluationStats,
    /// The simplex basis of the last LP solved on the way to this result.
    /// Feed it into [`spq_solver::SolverOptions::warm_start`] to warm-start
    /// a related evaluation (e.g. a SketchRefine refine step warm-starting
    /// from the sketch solve); the solver ignores it when the shapes do not
    /// match, so it is always safe to pass along.
    pub final_basis: Option<spq_solver::Basis>,
}

impl EvaluationResult {
    /// Convenience accessor for the objective estimate of the returned
    /// package, if any.
    pub fn objective(&self) -> Option<f64> {
        self.package.as_ref().map(|p| p.objective_estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ConstraintValidation;
    use spq_mcdb::vg::Degenerate;
    use spq_mcdb::RelationBuilder;

    fn report(feasible: bool) -> ValidationReport {
        ValidationReport {
            feasible,
            constraints: vec![ConstraintValidation {
                constraint_index: 0,
                probability: 0.9,
                satisfied_fraction: if feasible { 0.97 } else { 0.6 },
                surplus: if feasible { 0.07 } else { -0.3 },
                feasible,
                scenarios_evaluated: 1000,
            }],
            objective_estimate: 12.5,
            epsilon_upper_bound: 0.2,
            scenarios_used: 1000,
            m_hat: 1000,
            early_stopped: false,
            interrupted: false,
        }
    }

    #[test]
    fn from_dense_maps_back_to_relation_indices() {
        let x = vec![2.0, 0.0, 1.0];
        let tuples = vec![10, 20, 30];
        let p = Package::from_dense(&x, &tuples, report(true));
        assert_eq!(p.multiplicities, vec![(10, 2), (30, 1)]);
        assert_eq!(p.size(), 3);
        assert_eq!(p.num_distinct(), 2);
        assert!(p.is_feasible());
        assert_eq!(p.objective_estimate, 12.5);
        assert!(p.to_string().contains("3 tuples"));
    }

    #[test]
    fn describe_mentions_deterministic_attributes() {
        let rel = RelationBuilder::new("t")
            .deterministic_text("stock", vec!["AAPL", "MSFT"])
            .deterministic_f64("price", vec![234.0, 140.0])
            .stochastic("gain", Degenerate::new(vec![0.0, 0.0]))
            .build()
            .unwrap();
        let p = Package::from_dense(&[0.0, 2.0], &[0, 1], report(true));
        let text = p.describe(&rel);
        assert!(text.contains("MSFT"));
        assert!(text.contains("x2"));
        assert!(text.contains("validation-feasible"));
        let p2 = Package::from_dense(&[1.0, 0.0], &[0, 1], report(false));
        assert!(p2.describe(&rel).contains("NOT validation-feasible"));
    }

    #[test]
    fn evaluation_result_accessors() {
        let r = EvaluationResult {
            package: Some(Package::from_dense(&[1.0], &[0], report(true))),
            feasible: true,
            stats: EvaluationStats::default(),
            final_basis: None,
        };
        assert_eq!(r.objective(), Some(12.5));
        let empty = EvaluationResult {
            package: None,
            feasible: false,
            stats: EvaluationStats::default(),
            final_basis: None,
        };
        assert_eq!(empty.objective(), None);
    }

    #[test]
    fn fractional_values_below_half_are_dropped() {
        let p = Package::from_dense(&[0.4, 0.6, 1.49], &[0, 1, 2], report(true));
        assert_eq!(p.multiplicities, vec![(1, 1), (2, 1)]);
    }
}
