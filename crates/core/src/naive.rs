//! The Naïve algorithm (Algorithm 1): SAA optimize/validate loop.
//!
//! Naïve is the systematic embodiment of the standard stochastic-programming
//! recipe: build the Sample Average Approximation over `M` scenarios, solve
//! the resulting (large) DILP, validate the solution against `M̂`
//! out-of-sample scenarios, and — if validation fails — add `m` more
//! scenarios and repeat. Its problem size grows as Θ(N·M·K), which is
//! exactly what makes it slow or infeasible for large `M` (Section 3).

use crate::instance::Instance;
use crate::package::{EvaluationResult, EvaluationStats, Package};
use crate::saa::formulate_saa;
use crate::silp::Direction;
use crate::validation::validate_with;
use crate::Result;
use spq_solver::solve_full;
use std::time::Instant;

fn better(direction: Direction, candidate: f64, incumbent: f64) -> bool {
    match direction {
        Direction::Minimize => candidate < incumbent,
        Direction::Maximize => candidate > incumbent,
    }
}

/// Evaluate a stochastic package query with the Naïve algorithm.
pub fn evaluate_naive(instance: &Instance<'_>) -> Result<EvaluationResult> {
    let opts = &instance.options;
    let start = Instant::now();
    let direction = instance.silp.objective.direction();

    let mut stats = EvaluationStats::default();
    let mut m = opts.initial_scenarios.max(1);
    let mut best: Option<Package> = None;
    let mut best_feasible = false;
    // Basis carried across M escalations. The SAA's shape changes with M
    // (one indicator per scenario), so the solver usually restarts cold —
    // but threading the basis is free and pays off whenever M repeats.
    let mut basis: Option<spq_solver::Basis> = opts.solver.warm_start.clone();

    loop {
        // The armed deadline covers both the configured time limit and any
        // cancellation token; the solver polls the same deadline inside its
        // pivot loops, so an expiry mid-LP surfaces promptly here too.
        if opts.deadline.expired() {
            break;
        }
        stats.outer_iterations += 1;
        stats.scenarios_used = m;

        // Optimization phase: formulate and solve SAA_{Q,M}.
        let formulation = {
            let _span = spq_obs::span("formulate");
            formulate_saa(instance, m)?
        };
        stats.max_problem_coefficients = stats
            .max_problem_coefficients
            .max(formulation.num_coefficients());
        let mut solver_opts = opts.solver.clone();
        // Clone rather than move so the incumbent basis survives solves
        // that return none (e.g. a time-limited root relaxation).
        solver_opts.warm_start = basis.clone();
        let res = {
            let _span = spq_obs::span("milp");
            solve_full(&formulation.model, &solver_opts)?
        };
        stats.problems_solved += 1;
        stats.solver_nodes += res.nodes;
        stats.lp_pivots += res.lp_iterations;
        if res.basis.is_some() {
            basis = res.basis;
        }

        if let Some(solution) = res.solution {
            let x = formulation.multiplicities(&solution);
            // Validation phase: adaptive early stop rejects hopeless
            // candidates after a few stages; a candidate that would
            // terminate the loop is confirmed against the full M̂ budget
            // first, so the reported package never rests on an
            // early-stopped estimate.
            let mut report = validate_with(instance, &x, &opts.search_validation())?;
            stats.validations += 1;
            stats.validation_scenarios += report.scenarios_used;
            if report.interrupted && !opts.deadline.is_cancelled() {
                // The wall-clock budget expired mid-validation; this is the
                // last candidate (the loop breaks at the top next pass), so
                // give it its certificate with one deadline-exempt pass
                // instead of reporting it unvalidated.
                report = validate_with(instance, &x, &opts.certificate_validation())?;
                stats.validations += 1;
                stats.validation_scenarios += report.scenarios_used;
            } else if report.feasible && report.early_stopped {
                // A feasible confirm ends the loop, so this is the answer's
                // certificate: deadline-exempt (one bounded pass), lest a
                // deadline firing mid-confirm ship a partial report.
                report = validate_with(instance, &x, &opts.certificate_validation())?;
                stats.validations += 1;
                stats.validation_scenarios += report.scenarios_used;
            }
            let package = Package::from_dense(&x, &instance.silp.tuples, report.clone());
            let replace = match &best {
                None => true,
                Some(b) => {
                    (report.feasible && !best_feasible)
                        || (report.feasible == best_feasible
                            && better(direction, package.objective_estimate, b.objective_estimate))
                }
            };
            if replace {
                best_feasible = report.feasible;
                best = Some(package);
            }
            if report.feasible {
                break;
            }
        }

        // Add more optimization scenarios and retry.
        let next = m + opts.scenario_increment.max(1);
        if next > opts.max_scenarios {
            break;
        }
        m = next;
    }

    stats.wall_time = start.elapsed();
    stats.summaries_used = 0;
    Ok(EvaluationResult {
        feasible: best_feasible,
        package: best,
        stats,
        final_basis: basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, ConstraintKind, Silp, SilpConstraint, SilpObjective};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::{Relation, RelationBuilder};
    use spq_solver::Sense;

    fn relation() -> Relation {
        RelationBuilder::new("p")
            .deterministic_f64("price", vec![100.0, 100.0, 100.0, 100.0])
            .stochastic(
                "gain",
                NormalNoise::around(vec![5.0, 4.0, 1.0, 0.5], vec![1.0, 6.0, 0.2, 0.1]),
            )
            .build()
            .unwrap()
    }

    fn silp(p: f64, v: f64) -> Silp {
        Silp {
            relation: "p".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "budget".into(),
                    coeff: CoeffSource::Deterministic("price".into()),
                    sense: Sense::Le,
                    rhs: 300.0,
                    kind: ConstraintKind::Deterministic,
                },
                SilpConstraint {
                    name: "risk".into(),
                    coeff: CoeffSource::Stochastic("gain".into()),
                    sense: Sense::Ge,
                    rhs: v,
                    kind: ConstraintKind::Probabilistic { probability: p },
                },
            ],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn naive_finds_a_feasible_package_on_an_easy_query() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 15;
        opts.validation_scenarios = 600;
        let inst = Instance::new(&rel, silp(0.9, 0.0), opts).unwrap();
        let result = evaluate_naive(&inst).unwrap();
        assert!(result.feasible, "stats: {:?}", result.stats);
        let package = result.package.unwrap();
        assert!(package.is_feasible());
        assert!(package.size() > 0);
        assert!(package.size() <= 3); // budget 300 / price 100
        assert!(result.stats.problems_solved >= 1);
        assert!(result.stats.validations >= 1);
        assert!(result.stats.scenarios_used >= 15);
        assert!(result.stats.validation_scenarios >= 600);
        // The reported package is anchored to the full out-of-sample budget
        // even though the search validated adaptively.
        assert!(!package.validation.early_stopped);
        assert_eq!(package.validation.scenarios_used, 600);
    }

    #[test]
    fn naive_gives_up_after_max_scenarios_on_an_impossible_query() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 10;
        opts.scenario_increment = 10;
        opts.max_scenarios = 30;
        opts.validation_scenarios = 400;
        // Require total gain >= 100 with probability 0.95: impossible with at
        // most 3 tuples whose gains are centred near 5.
        let inst = Instance::new(&rel, silp(0.95, 100.0), opts).unwrap();
        let result = evaluate_naive(&inst).unwrap();
        assert!(!result.feasible);
        // It tried several scenario counts before giving up.
        assert!(result.stats.outer_iterations >= 2);
        assert!(result.stats.scenarios_used <= 30);
    }

    #[test]
    fn naive_problem_size_grows_with_iterations() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.initial_scenarios = 10;
        opts.scenario_increment = 20;
        opts.max_scenarios = 30;
        opts.validation_scenarios = 300;
        let inst = Instance::new(&rel, silp(0.99, 12.0), opts).unwrap();
        let result = evaluate_naive(&inst).unwrap();
        // Whether or not it succeeds, the recorded maximum problem size must
        // reflect the N*M*K growth (at least N * M coefficients).
        assert!(result.stats.max_problem_coefficients >= 4 * 10);
    }
}
