//! α-summaries of scenario sets (Section 4.1 and 5.3, 5.5).
//!
//! An *α-summary* of a scenario set with respect to a probabilistic
//! constraint is a single deterministic row of attribute values such that any
//! solution satisfying the summary is guaranteed to satisfy at least `⌈αM⌉`
//! of the scenarios (Definition 1). For an inner `>=` constraint the summary
//! is the tuple-wise **minimum** over a chosen subset `G(α)` of scenarios;
//! for `<=` it is the tuple-wise **maximum** (Proposition 1).
//!
//! The scenario set is split into `Z` partitions; each partition yields one
//! summary. `G_z(α)` is chosen greedily (Section 5.3): scenarios are ranked
//! by their *scenario score* under the previous solution so that the summary
//! is the one most likely to keep that solution feasible. Convergence
//! acceleration (Section 5.5) keeps the previous solution feasible by using
//! the anti-conservative aggregate (max instead of min) for tuples that
//! appear in the previous solution.

use spq_mcdb::ScenarioMatrix;
use spq_solver::Sense;

/// Split `m` scenario indices into `z` disjoint, deterministic partitions of
/// (approximately) equal size.
///
/// Edge cases: `m = 0` yields **no** partitions (an empty scenario set has no
/// meaningful summary — a zero-filled summary row would silently assert
/// `Σ 0·x ⊙ v` over nothing); `z = 0` is treated as `z = 1`; and `z > m`
/// is clamped to `m` so no partition is ever empty.
pub fn partition_scenarios(m: usize, z: usize) -> Vec<Vec<usize>> {
    if m == 0 {
        return Vec::new();
    }
    let z = z.clamp(1, m);
    let mut partitions = vec![Vec::with_capacity(m / z + 1); z];
    for j in 0..m {
        partitions[j % z].push(j);
    }
    partitions
}

/// Configuration of one summary-building pass for a single probabilistic
/// constraint.
#[derive(Debug, Clone)]
pub struct SummarySpec<'a> {
    /// Conservativeness level `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Inner constraint sense (`>=` uses tuple-wise min, `<=` max).
    pub sense: Sense,
    /// The previous solution, used for greedy `G_z` selection and
    /// convergence acceleration. `None` disables both.
    pub previous_solution: Option<&'a [f64]>,
    /// Enable the convergence-acceleration rule of Section 5.5.
    pub accelerate: bool,
}

/// Build the `Z` α-summaries of a scenario matrix according to `spec`,
/// partitioning scenarios with [`partition_scenarios`].
///
/// Returns one coefficient row per partition.
pub fn build_summaries(
    scenarios: &ScenarioMatrix,
    partitions: &[Vec<usize>],
    spec: &SummarySpec<'_>,
) -> Vec<Vec<f64>> {
    partitions
        .iter()
        .map(|partition| summarize_partition(scenarios, partition, spec))
        .collect()
}

/// Build the α-summary of one partition.
pub fn summarize_partition(
    scenarios: &ScenarioMatrix,
    partition: &[usize],
    spec: &SummarySpec<'_>,
) -> Vec<f64> {
    let n = scenarios.num_tuples();
    if partition.is_empty() || n == 0 {
        return vec![0.0; n];
    }
    let chosen = select_g(scenarios, partition, spec);
    let conservative_is_min = spec.sense == Sense::Ge;

    let mut summary = vec![
        if conservative_is_min {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        n
    ];
    let mut anti = vec![
        if conservative_is_min {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        n
    ];
    for &j in &chosen {
        let row = scenarios.scenario(j);
        for i in 0..n {
            if conservative_is_min {
                summary[i] = summary[i].min(row[i]);
                anti[i] = anti[i].max(row[i]);
            } else {
                summary[i] = summary[i].max(row[i]);
                anti[i] = anti[i].min(row[i]);
            }
        }
    }

    // Convergence acceleration: for tuples in the previous solution, use the
    // anti-conservative aggregate so the previous solution stays feasible for
    // the next CSA problem (Section 5.5).
    if spec.accelerate {
        if let Some(prev) = spec.previous_solution {
            for i in 0..n {
                if prev.get(i).copied().unwrap_or(0.0) > 0.0 {
                    summary[i] = anti[i];
                }
            }
        }
    }
    summary
}

/// Greedily select `G_z(α)` — the `⌈α·|partition|⌉` scenarios whose summary
/// is most likely to keep the previous solution feasible (Section 5.3).
fn select_g(scenarios: &ScenarioMatrix, partition: &[usize], spec: &SummarySpec<'_>) -> Vec<usize> {
    let count = ((spec.alpha * partition.len() as f64).ceil() as usize).clamp(1, partition.len());
    match spec.previous_solution {
        None => partition.iter().copied().take(count).collect(),
        Some(prev) => {
            let mut scored: Vec<(f64, usize)> = partition
                .iter()
                .map(|&j| {
                    let row = scenarios.scenario(j);
                    let score: f64 = row
                        .iter()
                        .zip(prev)
                        .filter(|(_, &x)| x > 0.0)
                        .map(|(s, &x)| s * x)
                        .sum();
                    (score, j)
                })
                .collect();
            // For a `>=` inner constraint, keep the scenarios with the highest
            // scores (they impose the weakest minimum); for `<=`, the lowest.
            if spec.sense == Sense::Ge {
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            } else {
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
            scored.into_iter().take(count).map(|(_, j)| j).collect()
        }
    }
}

/// Count how many scenarios of `scenarios` a solution `x` satisfies for an
/// inner constraint `Σ_i s_ij x_i (sense) rhs`. Used to verify the
/// α-summary guarantee (Definition 1) in tests and benchmarks.
pub fn count_satisfied_scenarios(
    scenarios: &ScenarioMatrix,
    x: &[f64],
    sense: Sense,
    rhs: f64,
) -> usize {
    (0..scenarios.num_scenarios())
        .filter(|&j| {
            let row = scenarios.scenario(j);
            let score: f64 = row.iter().zip(x).map(|(s, v)| s * v).sum();
            sense.check(score, rhs, 1e-9)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_mcdb::Scenario;

    fn matrix(rows: Vec<Vec<f64>>) -> ScenarioMatrix {
        let n = rows.first().map(|r| r.len()).unwrap_or(0);
        let scenarios: Vec<Scenario> = rows
            .into_iter()
            .enumerate()
            .map(|(index, values)| Scenario { index, values })
            .collect();
        ScenarioMatrix::from_scenarios(n, &scenarios)
    }

    /// The three scenarios of Figure 2 (gains of six trades).
    fn figure2() -> ScenarioMatrix {
        matrix(vec![
            vec![0.1, 0.05, -0.2, 0.2, 0.1, -0.7],
            vec![-0.2, -0.03, 0.5, 0.7, -0.7, -0.001],
            vec![0.01, 0.02, -0.1, -0.3, 0.2, 0.3],
        ])
    }

    #[test]
    fn partitioning_is_disjoint_and_covers_everything() {
        let parts = partition_scenarios(10, 3);
        assert_eq!(parts.len(), 3);
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Sizes are balanced within 1.
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        // Degenerate cases.
        assert_eq!(partition_scenarios(5, 1).len(), 1);
        assert_eq!(partition_scenarios(5, 99).len(), 5);
    }

    #[test]
    fn zero_scenarios_yield_no_partitions() {
        // m = 0 must not fabricate an empty partition (whose summary would be
        // an all-zero row pretending to cover scenarios that don't exist).
        assert!(partition_scenarios(0, 1).is_empty());
        assert!(partition_scenarios(0, 7).is_empty());
        assert!(partition_scenarios(0, 0).is_empty());
        let spec = SummarySpec {
            alpha: 1.0,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let summaries = build_summaries(&figure2(), &partition_scenarios(0, 3), &spec);
        assert!(summaries.is_empty());
    }

    #[test]
    fn z_larger_than_m_never_produces_empty_partitions() {
        for (m, z) in [(1usize, 5usize), (3, 4), (4, 100), (7, 7), (2, 0)] {
            let parts = partition_scenarios(m, z);
            assert_eq!(parts.len(), z.clamp(1, m), "m={m} z={z}");
            assert!(
                parts.iter().all(|p| !p.is_empty()),
                "m={m} z={z}: empty partition in {parts:?}"
            );
            let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..m).collect::<Vec<_>>(), "m={m} z={z}");
        }
    }

    #[test]
    fn figure_3_example_yields_the_066_summary() {
        // Using scenarios 1 and 3 (indices 0 and 2), the 0.66-summary is the
        // tuple-wise minimum shown in Figure 3 of the paper.
        let scenarios = figure2();
        let spec = SummarySpec {
            alpha: 0.66,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let summary = summarize_partition(&scenarios, &[0, 2], &spec);
        assert_eq!(summary, vec![0.01, 0.02, -0.2, -0.3, 0.1, -0.7]);
    }

    #[test]
    fn alpha_summary_guarantee_holds_for_ge_constraints() {
        // Definition 1: if x satisfies the summary, it satisfies at least
        // ceil(alpha * M) scenarios.
        let scenarios = figure2();
        let partitions = partition_scenarios(3, 1);
        let spec = SummarySpec {
            alpha: 1.0,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let summaries = build_summaries(&scenarios, &partitions, &spec);
        assert_eq!(summaries.len(), 1);
        let summary = &summaries[0];
        // Pick a solution satisfying the summary: x = (0,0,0,0,2,0), rhs 0.1.
        let x = vec![0.0, 0.0, 0.0, 0.0, 2.0, 0.0];
        let summary_score: f64 = summary.iter().zip(&x).map(|(s, v)| s * v).sum();
        let rhs = 0.1_f64.min(summary_score);
        // Since the summary is a tuple-wise minimum over ALL scenarios, any
        // solution satisfying it satisfies every scenario.
        let satisfied = count_satisfied_scenarios(&scenarios, &x, Sense::Ge, rhs);
        assert_eq!(satisfied, 3);
    }

    #[test]
    fn le_constraints_use_tuple_wise_maximum() {
        let scenarios = figure2();
        let spec = SummarySpec {
            alpha: 1.0,
            sense: Sense::Le,
            previous_solution: None,
            accelerate: false,
        };
        let summary = summarize_partition(&scenarios, &[0, 1, 2], &spec);
        assert_eq!(summary, vec![0.1, 0.05, 0.5, 0.7, 0.2, 0.3]);
        // Any x satisfying sum s_i x_i <= rhs under the max-summary satisfies
        // every scenario.
        let x = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let rhs: f64 = summary.iter().zip(&x).map(|(s, v)| s * v).sum();
        assert_eq!(count_satisfied_scenarios(&scenarios, &x, Sense::Le, rhs), 3);
    }

    #[test]
    fn smaller_alpha_is_less_conservative() {
        let scenarios = figure2();
        let make = |alpha: f64| SummarySpec {
            alpha,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let full = summarize_partition(&scenarios, &[0, 1, 2], &make(1.0));
        let partial = summarize_partition(&scenarios, &[0, 1, 2], &make(0.34));
        // With alpha = 0.34 only one scenario is used, so each summary entry
        // is >= the full (all-scenario minimum) entry.
        for (p, f) in partial.iter().zip(&full) {
            assert!(p >= f);
        }
    }

    #[test]
    fn greedy_selection_prefers_scenarios_friendly_to_previous_solution() {
        let scenarios = figure2();
        // Previous solution buys tuple 3 (index 3) only.
        let prev = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let spec = SummarySpec {
            alpha: 0.3, // one scenario out of three
            sense: Sense::Ge,
            previous_solution: Some(&prev),
            accelerate: false,
        };
        let summary = summarize_partition(&scenarios, &[0, 1, 2], &spec);
        // Scenario 1 (index 1) has the highest gain for tuple 3 (0.7), so the
        // single-scenario summary equals that scenario's row.
        assert_eq!(summary, vec![-0.2, -0.03, 0.5, 0.7, -0.7, -0.001]);

        // For a <= constraint the lowest-score scenario is chosen instead.
        let spec_le = SummarySpec {
            alpha: 0.3,
            sense: Sense::Le,
            previous_solution: Some(&prev),
            accelerate: false,
        };
        let summary_le = summarize_partition(&scenarios, &[0, 1, 2], &spec_le);
        assert_eq!(summary_le, vec![0.01, 0.02, -0.1, -0.3, 0.2, 0.3]);
    }

    #[test]
    fn acceleration_keeps_previous_solution_feasible() {
        let scenarios = figure2();
        let prev = vec![0.0, 0.0, 0.0, 2.0, 0.0, 0.0];
        let base = SummarySpec {
            alpha: 1.0,
            sense: Sense::Ge,
            previous_solution: Some(&prev),
            accelerate: false,
        };
        let accel = SummarySpec {
            accelerate: true,
            ..base.clone()
        };
        let plain = summarize_partition(&scenarios, &[0, 1, 2], &base);
        let boosted = summarize_partition(&scenarios, &[0, 1, 2], &accel);
        // Tuple 3 appears in the previous solution, so acceleration replaces
        // its minimum (-0.3) with its maximum (0.7).
        assert_eq!(plain[3], -0.3);
        assert_eq!(boosted[3], 0.7);
        // Other tuples are untouched.
        for i in [0usize, 1, 2, 4, 5] {
            assert_eq!(plain[i], boosted[i]);
        }
    }

    #[test]
    fn partition_count_controls_number_of_summaries() {
        let scenarios = figure2();
        let spec = SummarySpec {
            alpha: 1.0,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        for z in 1..=3 {
            let partitions = partition_scenarios(3, z);
            let summaries = build_summaries(&scenarios, &partitions, &spec);
            assert_eq!(summaries.len(), z);
        }
        // With Z = M each summary is exactly one scenario (CSA == SAA).
        let partitions = partition_scenarios(3, 3);
        let summaries = build_summaries(&scenarios, &partitions, &spec);
        for (z, summary) in summaries.iter().enumerate() {
            assert_eq!(summary, &scenarios.scenario(partitions[z][0]).to_vec());
        }
    }

    #[test]
    fn empty_partition_and_empty_matrix_edge_cases() {
        let scenarios = figure2();
        let spec = SummarySpec {
            alpha: 0.5,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        assert_eq!(summarize_partition(&scenarios, &[], &spec), vec![0.0; 6]);
        let empty = matrix(vec![]);
        assert_eq!(summarize_partition(&empty, &[], &spec), Vec::<f64>::new());
    }
}
