//! A fully prepared SPQ problem instance.
//!
//! [`Instance`] bundles the relation, the translated SILP, the evaluation
//! options, precomputed deterministic coefficient vectors, precomputed
//! expectation estimates (the paper's `t_i.μ̂_A`, estimated from the
//! validation stream during a precomputation phase, Section 3.2), derived
//! multiplicity bounds, and the seeded scenario generators for the
//! optimization and validation streams.

use crate::error::SpqError;
use crate::options::SpqOptions;
use crate::silp::{CoeffSource, Silp, SilpObjective};
use crate::Result;
use spq_mcdb::{ExpectationEstimator, Relation, ScenarioGenerator, ScenarioMatrix};
use spq_solver::Sense;
use std::collections::HashMap;
use std::sync::Arc;

/// A prepared problem instance: everything the Naïve and SummarySearch
/// algorithms need to formulate, solve and validate.
pub struct Instance<'a> {
    /// The underlying Monte Carlo relation.
    pub relation: &'a Relation,
    /// The SILP over the candidate tuples.
    pub silp: Silp,
    /// Evaluation options.
    pub options: SpqOptions,
    /// Optimization-stream scenario generator.
    pub opt_gen: ScenarioGenerator,
    /// Validation-stream scenario generator.
    pub val_gen: ScenarioGenerator,
    /// Per-column deterministic values restricted to candidate tuples.
    det_values: HashMap<String, Vec<f64>>,
    /// Per-column expectation estimates restricted to candidate tuples.
    expectations: HashMap<String, Vec<f64>>,
    /// Per-tuple multiplicity upper bound.
    multiplicity_bounds: Vec<f64>,
    /// Per-tuple multiplicity lower bound (0 unless a caller pins variables,
    /// e.g. SketchRefine freezing already-refined partitions).
    multiplicity_floors: Vec<f64>,
    /// (min, max) realized value of the objective column over a sample of
    /// validation scenarios, restricted to candidate tuples; used for the
    /// constraint-agnostic bounds of Table 1.
    objective_value_bounds: Option<(f64, f64)>,
    /// Moment prefilter: for every referenced stochastic column whose
    /// candidate tuples are all provably scenario-invariant (zero-variance —
    /// see [`spq_mcdb::VgFunction::is_scenario_invariant`]), the single
    /// probed realization per candidate. Scenario requests for these columns
    /// broadcast this vector instead of drawing, bit-identically.
    invariant_values: HashMap<String, Vec<f64>>,
}

impl<'a> Instance<'a> {
    /// Prepare an instance: validate column references, estimate
    /// expectations, derive multiplicity bounds.
    ///
    /// Preparation also **arms the deadline**: the relative
    /// [`SpqOptions::time_limit`] is folded into [`SpqOptions::deadline`]
    /// (keeping any cancellation token), and the armed deadline is merged
    /// into the solver options — so every evaluation loop and every LP pivot
    /// loop downstream observes the same absolute budget.
    pub fn new(relation: &'a Relation, silp: Silp, options: SpqOptions) -> Result<Self> {
        let mut options = options;
        options.deadline = options.deadline.clone().tightened_by(options.time_limit);
        options.solver.deadline = options.solver.deadline.clone().merged(&options.deadline);
        let options = options;
        let opt_gen = ScenarioGenerator::new(options.seed);
        let val_gen = ScenarioGenerator::validation(options.seed);

        // Enforce the relation-residency ceiling before touching any column:
        // a disk-backed relation gets its chunk-cache budget clamped down to
        // the cap; an in-memory relation that already exceeds it cannot be
        // made to fit and is rejected outright.
        if let Some(cap) = options.max_relation_bytes {
            relation.clamp_cache_budget(cap);
            let resident = relation.resident_bytes();
            if resident > cap {
                return Err(SpqError::InvalidArgument(format!(
                    "relation `{}` holds {resident} bytes of deterministic columns resident, \
                     above max_relation_bytes = {cap}; rebuild it with disk-backed storage",
                    relation.name()
                )));
            }
        }

        // Collect referenced columns.
        let mut det_cols: Vec<String> = Vec::new();
        let mut stoch_cols: Vec<String> = Vec::new();
        let mut record = |coeff: &CoeffSource| match coeff {
            CoeffSource::Constant(_) => {}
            CoeffSource::Deterministic(c) => {
                if !det_cols.contains(c) {
                    det_cols.push(c.clone());
                }
            }
            CoeffSource::Stochastic(c) => {
                if !stoch_cols.contains(c) {
                    stoch_cols.push(c.clone());
                }
            }
        };
        for c in &silp.constraints {
            record(&c.coeff);
        }
        match &silp.objective {
            SilpObjective::Linear { coeff, .. } => record(coeff),
            SilpObjective::Probability { attribute, .. } => {
                record(&CoeffSource::Stochastic(attribute.clone()))
            }
        }

        // Deterministic coefficient vectors restricted to the candidates,
        // gathered through the storage tier so a sub-instance over a few
        // tuples of a disk-backed relation pages in only their chunks —
        // never a full column.
        let mut det_values = HashMap::new();
        for col in &det_cols {
            let restricted = relation.gather_f64(col, &silp.tuples)?;
            det_values.insert(col.clone(), restricted);
        }

        // Expectation estimates for stochastic columns (precomputation
        // phase), restricted to the candidates so that sub-instances over a
        // few tuples of a huge relation stay cheap to prepare.
        let estimator =
            ExpectationEstimator::new(options.seed, options.expectation_scenarios.max(1));
        let mut expectations = HashMap::new();
        for col in &stoch_cols {
            let restricted = estimator.estimate_tuples(relation, col, &silp.tuples)?;
            expectations.insert(col.clone(), restricted);
        }

        // Moment prefilter: a referenced stochastic column whose candidate
        // tuples are all provably scenario-invariant never needs per-scenario
        // draws — one probed realization per tuple stands in for every
        // scenario, bit-identically. Probe it once here (a single-scenario
        // realization) and let every matrix/moment accessor broadcast it.
        let mut invariant_values = HashMap::new();
        for col in &stoch_cols {
            let sc = relation.stochastic_column(col)?;
            if !silp.tuples.is_empty()
                && silp.tuples.iter().all(|&t| sc.vg.is_scenario_invariant(t))
            {
                let probe =
                    val_gen.realize_sparse_matrix_range(relation, col, &silp.tuples, 0..1, 1)?;
                invariant_values.insert(col.clone(), probe.scenario(0).to_vec());
            }
        }

        let multiplicity_bounds = derive_multiplicity_bounds(&silp, &det_values, &options);
        let multiplicity_floors = vec![0.0; multiplicity_bounds.len()];

        let mut instance = Instance {
            relation,
            silp,
            options,
            opt_gen,
            val_gen,
            det_values,
            expectations,
            multiplicity_bounds,
            multiplicity_floors,
            objective_value_bounds: None,
            invariant_values,
        };
        instance.objective_value_bounds = instance.sample_objective_value_bounds()?;
        Ok(instance)
    }

    /// Number of decision variables (candidate tuples).
    pub fn num_vars(&self) -> usize {
        self.silp.num_vars()
    }

    /// Per-tuple multiplicity upper bounds.
    pub fn multiplicity_bounds(&self) -> &[f64] {
        &self.multiplicity_bounds
    }

    /// Per-tuple multiplicity lower bounds (0 unless variables were pinned).
    pub fn multiplicity_floors(&self) -> &[f64] {
        &self.multiplicity_floors
    }

    /// Element-wise tighten the multiplicity upper bounds with `caps`
    /// (`caps[i]` applies to candidate position `i`; a floor set by
    /// [`Self::fix_multiplicity`] is never violated). SketchRefine uses this
    /// to give each partition representative a capacity of
    /// `partition size × per-tuple bound`.
    pub fn cap_multiplicity_bounds(&mut self, caps: &[f64]) {
        for (bound, &cap) in self.multiplicity_bounds.iter_mut().zip(caps) {
            *bound = bound.min(cap.max(0.0));
        }
        for (bound, &floor) in self
            .multiplicity_bounds
            .iter_mut()
            .zip(&self.multiplicity_floors)
        {
            *bound = bound.max(floor);
        }
    }

    /// Pin candidate position `position` to exactly `value` copies in every
    /// formulation built from this instance (lower bound = upper bound =
    /// `value`). SketchRefine uses this to freeze the choices of partitions
    /// other than the one currently being refined.
    pub fn fix_multiplicity(&mut self, position: usize, value: f64) {
        let value = value.max(0.0);
        self.multiplicity_floors[position] = value;
        self.multiplicity_bounds[position] = value;
    }

    /// Expectation estimates for a stochastic column (restricted to candidate
    /// tuples).
    pub fn expectations(&self, column: &str) -> Result<&[f64]> {
        self.expectations
            .get(column)
            .map(Vec::as_slice)
            .ok_or_else(|| SpqError::Internal(format!("no expectation estimate for `{column}`")))
    }

    /// Deterministic values for a column (restricted to candidate tuples).
    pub fn deterministic(&self, column: &str) -> Result<&[f64]> {
        self.det_values
            .get(column)
            .map(Vec::as_slice)
            .ok_or_else(|| SpqError::Internal(format!("no deterministic values for `{column}`")))
    }

    /// The deterministic coefficient vector used in a DILP for a coefficient
    /// source: constants, deterministic values, or expectation estimates.
    pub fn coefficients(&self, coeff: &CoeffSource) -> Result<Vec<f64>> {
        Ok(match coeff {
            CoeffSource::Constant(c) => vec![*c; self.num_vars()],
            CoeffSource::Deterministic(col) => self.deterministic(col)?.to_vec(),
            CoeffSource::Stochastic(col) => self.expectations(col)?.to_vec(),
        })
    }

    /// Realize one optimization scenario of a stochastic column, restricted
    /// to candidate tuples.
    pub fn optimization_scenario(&self, column: &str, scenario: usize) -> Result<Vec<f64>> {
        let row = self.opt_gen.realize_sparse(
            self.relation,
            column,
            &self.silp.tuples,
            scenario..scenario + 1,
        )?;
        Ok(row.into_iter().next().unwrap_or_default())
    }

    /// Realize a single optimization-stream cell: the value of candidate
    /// position `position` in scenario `scenario` (tuple-wise generation,
    /// Section 5.5).
    pub fn optimization_scenario_cell(
        &self,
        column: &str,
        position: usize,
        scenario: usize,
    ) -> Result<f64> {
        Ok(self.opt_gen.realize_cell(
            self.relation,
            column,
            self.silp.tuples[position],
            scenario,
        )?)
    }

    /// True when the moment prefilter proved `column` scenario-invariant
    /// over the candidate tuples: every scenario request for it is served by
    /// broadcasting one probed realization instead of drawing.
    pub fn is_scenario_free(&self, column: &str) -> bool {
        self.invariant_values.contains_key(column)
    }

    /// Per-candidate `(mean, standard deviation)` moments of a stochastic
    /// column over the first `m` validation scenarios. For columns the
    /// moment prefilter proved scenario-invariant this costs no draws at
    /// all — the moments are `(probed value, 0)` exactly; otherwise the
    /// block engine realizes the window tuple-major and folds it.
    pub fn tuple_moments(&self, column: &str, m: usize) -> Result<Vec<(f64, f64)>> {
        if let Some(values) = self.invariant_values.get(column) {
            return Ok(values.iter().map(|&v| (v, 0.0)).collect());
        }
        Ok(self
            .val_gen
            .tuple_moments(self.relation, column, &self.silp.tuples, m)?)
    }

    /// Realize the first `m` optimization scenarios of a stochastic column as
    /// a dense matrix restricted to candidate tuples.
    ///
    /// When the moment prefilter proved the column scenario-invariant the
    /// matrix is a broadcast of the probed values (no draws, no cache
    /// traffic). Otherwise, when [`SpqOptions::scenario_cache`] is set the
    /// block is memoized there (and possibly shared with concurrent
    /// evaluations of the same relation); else it is generated for this call
    /// alone. In every case the values are bit-identical to serial
    /// generation.
    pub fn optimization_matrix(&self, column: &str, m: usize) -> Result<Arc<ScenarioMatrix>> {
        if let Some(values) = self.invariant_values.get(column) {
            return Ok(Arc::new(ScenarioMatrix::broadcast(values, m)));
        }
        match &self.options.scenario_cache {
            Some(cache) => Ok(cache.sparse_matrix(
                &self.opt_gen,
                self.relation,
                column,
                &self.silp.tuples,
                m,
            )?),
            None => Ok(Arc::new(self.opt_gen.realize_sparse_matrix(
                self.relation,
                column,
                &self.silp.tuples,
                m,
            )?)),
        }
    }

    /// Realize validation scenarios of a stochastic column for the given
    /// candidate positions (indices into `silp.tuples`), one row per scenario.
    pub fn validation_rows(
        &self,
        column: &str,
        positions: &[usize],
        scenarios: std::ops::Range<usize>,
    ) -> Result<Vec<Vec<f64>>> {
        let tuples: Vec<usize> = positions.iter().map(|&p| self.silp.tuples[p]).collect();
        Ok(self
            .val_gen
            .realize_sparse(self.relation, column, &tuples, scenarios)?)
    }

    /// Realize one validation-stream block (a scenario window of a
    /// stochastic column restricted to candidate positions) as a dense
    /// matrix. This is the unit the blocked validator streams over: when
    /// [`SpqOptions::scenario_cache`] is set the block is memoized there
    /// (shared across re-validations of the same package), otherwise it is
    /// generated for this call alone — bit-identically either way. The block
    /// itself is realized serially; the validator parallelizes across
    /// blocks.
    pub fn validation_matrix(
        &self,
        column: &str,
        positions: &[usize],
        scenarios: std::ops::Range<usize>,
    ) -> Result<Arc<ScenarioMatrix>> {
        if let Some(values) = self.invariant_values.get(column) {
            let picked: Vec<f64> = positions.iter().map(|&p| values[p]).collect();
            return Ok(Arc::new(ScenarioMatrix::broadcast(
                &picked,
                scenarios.len(),
            )));
        }
        let tuples: Vec<usize> = positions.iter().map(|&p| self.silp.tuples[p]).collect();
        match &self.options.scenario_cache {
            Some(cache) => Ok(cache.sparse_matrix_range(
                &self.val_gen,
                self.relation,
                column,
                &tuples,
                scenarios,
            )?),
            None => Ok(Arc::new(self.val_gen.realize_sparse_matrix_range(
                self.relation,
                column,
                &tuples,
                scenarios,
                1,
            )?)),
        }
    }

    /// (min, max) sampled value of the objective's stochastic column, if the
    /// objective is stochastic.
    pub fn objective_value_bounds(&self) -> Option<(f64, f64)> {
        self.objective_value_bounds
    }

    /// Package-size bounds `(l̲, l̄)` implied by `COUNT(*)` constraints
    /// (Appendix B, assumption A2). The defaults are `0` and the sum of the
    /// multiplicity bounds.
    pub fn package_size_bounds(&self) -> (f64, f64) {
        let mut lo = 0.0f64;
        let mut hi: f64 = self.multiplicity_bounds.iter().sum();
        for c in &self.silp.constraints {
            if let CoeffSource::Constant(k) = c.coeff {
                if (k - 1.0).abs() < 1e-12 && !c.kind.is_probabilistic() {
                    match c.sense {
                        Sense::Ge => lo = lo.max(c.rhs),
                        Sense::Le => hi = hi.min(c.rhs),
                        Sense::Eq => {
                            lo = lo.max(c.rhs);
                            hi = hi.min(c.rhs);
                        }
                    }
                }
            }
        }
        (lo.max(0.0), hi.max(0.0))
    }

    fn sample_objective_value_bounds(&self) -> Result<Option<(f64, f64)>> {
        let column = match &self.silp.objective {
            SilpObjective::Linear {
                coeff: CoeffSource::Stochastic(col),
                ..
            } => col.clone(),
            SilpObjective::Probability { attribute, .. } => attribute.clone(),
            _ => return Ok(None),
        };
        if self.num_vars() == 0 {
            return Ok(None);
        }
        // Moment prefilter: a scenario-invariant objective column realizes
        // to the probed values in every scenario, so its bounds need no
        // sampling at all.
        if let Some(values) = self.invariant_values.get(&column) {
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            return Ok((lo.is_finite() && hi.is_finite()).then_some((lo, hi)));
        }
        // Sample a modest number of validation scenarios across all candidate
        // tuples to bound realized values (assumption A1 of Appendix B; the
        // paper likewise derives possibly loose bounds from min/max scenario
        // values). At 10k+ candidates this block is the dominant preparation
        // cost, so it goes through the shared scenario cache when one is
        // configured: repeated or concurrent evaluations of the same query
        // sample it once.
        let samples = 64.min(self.options.validation_scenarios.max(1));
        let matrix = match &self.options.scenario_cache {
            Some(cache) => cache.sparse_matrix(
                &self.val_gen,
                self.relation,
                &column,
                &self.silp.tuples,
                samples,
            )?,
            None => Arc::new(self.val_gen.realize_sparse_matrix(
                self.relation,
                &column,
                &self.silp.tuples,
                samples,
            )?),
        };
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for j in 0..matrix.num_scenarios() {
            for &v in matrix.scenario(j) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo.is_finite() && hi.is_finite() {
            Ok(Some((lo, hi)))
        } else {
            Ok(None)
        }
    }
}

/// Derive per-tuple multiplicity upper bounds from `REPEAT`, `COUNT(*) <= u`
/// constraints and deterministic budget constraints with positive
/// coefficients; fall back to the configured bound otherwise.
fn derive_multiplicity_bounds(
    silp: &Silp,
    det_values: &HashMap<String, Vec<f64>>,
    options: &SpqOptions,
) -> Vec<f64> {
    let n = silp.num_vars();
    let fallback = f64::from(options.fallback_multiplicity_bound);
    let mut bounds = vec![
        match silp.repeat_bound {
            Some(r) => f64::from(r),
            None => f64::INFINITY,
        };
        n
    ];

    for c in &silp.constraints {
        if c.kind.is_probabilistic() || c.sense != Sense::Le || c.rhs < 0.0 {
            continue;
        }
        match &c.coeff {
            CoeffSource::Constant(k) if *k > 0.0 => {
                let b = (c.rhs / k).floor();
                for bound in &mut bounds {
                    *bound = bound.min(b);
                }
            }
            CoeffSource::Deterministic(col) => {
                if let Some(values) = det_values.get(col) {
                    for (bound, &v) in bounds.iter_mut().zip(values) {
                        if v > 0.0 {
                            *bound = bound.min((c.rhs / v).floor());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    for bound in &mut bounds {
        if !bound.is_finite() {
            *bound = fallback;
        }
        *bound = bound.max(0.0);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silp::{ConstraintKind, Direction, SilpConstraint};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;

    fn relation() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![100.0, 250.0, 50.0, 400.0])
            .stochastic("gain", NormalNoise::around(vec![1.0, 2.0, 3.0, 4.0], 0.5))
            .build()
            .unwrap()
    }

    fn silp(constraints: Vec<SilpConstraint>) -> Silp {
        Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints,
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    fn budget_constraint(rhs: f64) -> SilpConstraint {
        SilpConstraint {
            name: "budget".into(),
            coeff: CoeffSource::Deterministic("price".into()),
            sense: Sense::Le,
            rhs,
            kind: ConstraintKind::Deterministic,
        }
    }

    fn count_le(rhs: f64) -> SilpConstraint {
        SilpConstraint {
            name: "count".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Le,
            rhs,
            kind: ConstraintKind::Deterministic,
        }
    }

    #[test]
    fn coefficients_pick_the_right_source() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            silp(vec![budget_constraint(500.0)]),
            SpqOptions::for_tests(),
        )
        .unwrap();
        assert_eq!(
            inst.coefficients(&CoeffSource::Deterministic("price".into()))
                .unwrap(),
            vec![100.0, 250.0, 50.0, 400.0]
        );
        assert_eq!(
            inst.coefficients(&CoeffSource::Constant(2.0)).unwrap(),
            vec![2.0; 4]
        );
        let means = inst
            .coefficients(&CoeffSource::Stochastic("gain".into()))
            .unwrap();
        // Analytic means from NormalNoise.
        assert_eq!(means, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn multiplicity_bounds_from_budget_and_count() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            silp(vec![budget_constraint(500.0), count_le(3.0)]),
            SpqOptions::for_tests(),
        )
        .unwrap();
        // Budget 500: price 100 -> 5, 250 -> 2, 50 -> 10, 400 -> 1; count <= 3
        // tightens to min(., 3).
        assert_eq!(inst.multiplicity_bounds(), &[3.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn fallback_multiplicity_bound_applies_without_constraints() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.fallback_multiplicity_bound = 17;
        let inst = Instance::new(&rel, silp(vec![]), opts).unwrap();
        assert_eq!(inst.multiplicity_bounds(), &[17.0; 4]);
    }

    #[test]
    fn repeat_bound_is_respected() {
        let rel = relation();
        let mut s = silp(vec![count_le(50.0)]);
        s.repeat_bound = Some(2);
        let inst = Instance::new(&rel, s, SpqOptions::for_tests()).unwrap();
        assert_eq!(inst.multiplicity_bounds(), &[2.0; 4]);
    }

    #[test]
    fn package_size_bounds_from_count_constraints() {
        let rel = relation();
        let mut constraints = vec![count_le(10.0)];
        constraints.push(SilpConstraint {
            name: "count_lo".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Ge,
            rhs: 5.0,
            kind: ConstraintKind::Deterministic,
        });
        let inst = Instance::new(&rel, silp(constraints), SpqOptions::for_tests()).unwrap();
        assert_eq!(inst.package_size_bounds(), (5.0, 10.0));
    }

    #[test]
    fn scenario_access_is_restricted_to_candidates() {
        let rel = relation();
        let mut s = silp(vec![count_le(3.0)]);
        s.tuples = vec![1, 3];
        let inst = Instance::new(&rel, s, SpqOptions::for_tests()).unwrap();
        assert_eq!(inst.num_vars(), 2);
        let matrix = inst.optimization_matrix("gain", 5).unwrap();
        assert_eq!(matrix.num_scenarios(), 5);
        assert_eq!(matrix.num_tuples(), 2);
        let row = inst.optimization_scenario("gain", 2).unwrap();
        assert_eq!(row.len(), 2);
        assert_eq!(row[0], matrix.value(2, 0));
        assert_eq!(row[1], matrix.value(2, 1));
        // Validation rows differ from optimization rows (different stream).
        let val = inst.validation_rows("gain", &[0, 1], 2..3).unwrap();
        assert_ne!(val[0], row);
    }

    #[test]
    fn objective_value_bounds_are_sampled_for_stochastic_objectives() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(vec![count_le(3.0)]), SpqOptions::for_tests()).unwrap();
        let (lo, hi) = inst.objective_value_bounds().unwrap();
        assert!(lo < hi);
        // Gains are N(1..4, 0.5); sampled bounds should be within a broad
        // plausible window.
        assert!(lo > -5.0 && hi < 10.0);
    }

    #[test]
    fn caps_and_fixed_multiplicities_are_respected() {
        let rel = relation();
        let mut inst = Instance::new(
            &rel,
            silp(vec![budget_constraint(500.0), count_le(3.0)]),
            SpqOptions::for_tests(),
        )
        .unwrap();
        assert_eq!(inst.multiplicity_floors(), &[0.0; 4]);
        inst.cap_multiplicity_bounds(&[2.0, 10.0, 1.0, 0.0]);
        // Caps only tighten: derived bounds were [3, 2, 3, 1].
        assert_eq!(inst.multiplicity_bounds(), &[2.0, 2.0, 1.0, 0.0]);
        inst.fix_multiplicity(1, 2.0);
        assert_eq!(inst.multiplicity_floors()[1], 2.0);
        assert_eq!(inst.multiplicity_bounds()[1], 2.0);
        // A later cap below the floor is ignored for the pinned position.
        inst.cap_multiplicity_bounds(&[2.0, 0.0, 1.0, 0.0]);
        assert_eq!(inst.multiplicity_bounds()[1], 2.0);
    }

    #[test]
    fn fixed_multiplicities_survive_a_solve() {
        use spq_solver::{solve_full, SolverOptions};
        let rel = relation();
        // Maximize gains with a budget; tuple 2 (gain 3, price 50) would
        // normally dominate — pin tuple 0 to two copies instead.
        let mut inst = Instance::new(
            &rel,
            silp(vec![budget_constraint(300.0)]),
            SpqOptions::for_tests(),
        )
        .unwrap();
        inst.fix_multiplicity(0, 2.0);
        let f = crate::saa::formulate_unconstrained(&inst, 5).unwrap();
        let res = solve_full(&f.model, &SolverOptions::with_time_limit_secs(10)).unwrap();
        let x = f.multiplicities(&res.solution.unwrap());
        assert_eq!(x[0], 2.0, "pinned variable must keep its value: {x:?}");
        // Budget 300 - 2*100 leaves room for two of tuple 2 (price 50).
        let total: f64 = x
            .iter()
            .zip([100.0, 250.0, 50.0, 400.0])
            .map(|(v, p)| v * p)
            .sum();
        assert!(total <= 300.0 + 1e-9);
    }

    #[test]
    fn optimization_matrices_are_shared_through_the_cache() {
        let rel = relation();
        let cache = Arc::new(spq_mcdb::ScenarioCache::new());
        let opts = SpqOptions::for_tests().with_scenario_cache(cache.clone());
        let a = Instance::new(&rel, silp(vec![count_le(3.0)]), opts.clone()).unwrap();
        let b = Instance::new(&rel, silp(vec![count_le(3.0)]), opts).unwrap();
        // Instance preparation itself shares the objective-bounds block.
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let ma = a.optimization_matrix("gain", 6).unwrap();
        let mb = b.optimization_matrix("gain", 6).unwrap();
        assert!(
            Arc::ptr_eq(&ma, &mb),
            "two instances over the same relation must share the block"
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        // The uncached path produces bit-identical values.
        let plain =
            Instance::new(&rel, silp(vec![count_le(3.0)]), SpqOptions::for_tests()).unwrap();
        assert_eq!(*plain.optimization_matrix("gain", 6).unwrap(), *ma);
    }

    #[test]
    fn validation_matrices_match_validation_rows_and_share_the_cache() {
        let rel = relation();
        let cache = Arc::new(spq_mcdb::ScenarioCache::new());
        let opts = SpqOptions::for_tests().with_scenario_cache(cache.clone());
        let inst = Instance::new(&rel, silp(vec![count_le(3.0)]), opts).unwrap();
        let matrix = inst.validation_matrix("gain", &[1, 3], 5..12).unwrap();
        assert_eq!(matrix.num_scenarios(), 7);
        assert_eq!(matrix.num_tuples(), 2);
        let rows = inst.validation_rows("gain", &[1, 3], 5..12).unwrap();
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(matrix.scenario(j), row.as_slice());
        }
        // A repeated request is served from the shared cache.
        let again = inst.validation_matrix("gain", &[1, 3], 5..12).unwrap();
        assert!(Arc::ptr_eq(&matrix, &again));
        // Without a cache the block is generated per call, bit-identically.
        let plain =
            Instance::new(&rel, silp(vec![count_le(3.0)]), SpqOptions::for_tests()).unwrap();
        assert_eq!(
            *plain.validation_matrix("gain", &[1, 3], 5..12).unwrap(),
            *matrix
        );
    }

    #[test]
    fn moment_prefilter_skips_draws_for_invariant_columns_bit_identically() {
        use spq_mcdb::vg::Degenerate;
        let rel = RelationBuilder::new("t")
            .deterministic_f64("price", vec![100.0, 250.0, 50.0, 400.0])
            .stochastic("gain", Degenerate::new(vec![1.5, 2.5, 3.5, 4.5]))
            .build()
            .unwrap();
        let cache = Arc::new(spq_mcdb::ScenarioCache::new());
        let opts = SpqOptions::for_tests().with_scenario_cache(cache.clone());
        let inst = Instance::new(&rel, silp(vec![count_le(3.0)]), opts).unwrap();

        assert!(inst.is_scenario_free("gain"));
        // The prefilter answers matrices without touching the cache...
        let matrix = inst.optimization_matrix("gain", 9).unwrap();
        let vmatrix = inst.validation_matrix("gain", &[1, 3], 4..10).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // ...and the broadcast is bit-identical to full generation.
        let full = inst
            .opt_gen
            .realize_sparse_matrix(&rel, "gain", &inst.silp.tuples, 9)
            .unwrap();
        assert_eq!(*matrix, full);
        let vfull = inst
            .val_gen
            .realize_sparse_matrix_range(&rel, "gain", &[1, 3], 4..10, 1)
            .unwrap();
        assert_eq!(*vmatrix, vfull);
        // Moments are exact without draws, and objective bounds match the
        // degenerate values.
        assert_eq!(
            inst.tuple_moments("gain", 100).unwrap(),
            vec![(1.5, 0.0), (2.5, 0.0), (3.5, 0.0), (4.5, 0.0)]
        );
        assert_eq!(inst.objective_value_bounds(), Some((1.5, 4.5)));
    }

    #[test]
    fn moment_prefilter_covers_zero_sigma_and_leaves_noisy_columns_alone() {
        let zero_sigma = RelationBuilder::new("t")
            .deterministic_f64("price", vec![100.0, 250.0, 50.0, 400.0])
            .stochastic(
                "gain",
                NormalNoise::around(vec![1.0, 2.0, 3.0, 4.0], vec![0.0; 4]),
            )
            .build()
            .unwrap();
        let inst = Instance::new(
            &zero_sigma,
            silp(vec![count_le(3.0)]),
            SpqOptions::for_tests(),
        )
        .unwrap();
        assert!(inst.is_scenario_free("gain"));
        assert_eq!(inst.objective_value_bounds(), Some((1.0, 4.0)));

        // A noisy column keeps drawing: not scenario-free, nonzero stds.
        let noisy = relation();
        let inst =
            Instance::new(&noisy, silp(vec![count_le(3.0)]), SpqOptions::for_tests()).unwrap();
        assert!(!inst.is_scenario_free("gain"));
        let moments = inst.tuple_moments("gain", 256).unwrap();
        assert!(moments.iter().all(|&(_, sd)| sd > 0.1));
    }

    #[test]
    fn unknown_column_reports_internal_error() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(vec![count_le(3.0)]), SpqOptions::for_tests()).unwrap();
        assert!(inst.expectations("nope").is_err());
        assert!(inst.deterministic("nope").is_err());
    }
}
