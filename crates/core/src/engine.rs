//! High-level query evaluation engine.
//!
//! [`SpqEngine`] ties the whole pipeline together: parse an sPaQL string,
//! bind it against a Monte Carlo relation, translate it into a SILP, prepare
//! the problem instance (expectation precomputation, multiplicity bounds,
//! scenario streams), and evaluate it with [`Algorithm::Naive`],
//! [`Algorithm::SummarySearch`], or [`Algorithm::SketchRefine`].
//!
//! SketchRefine lives in the separate `spq-sketch` crate (which builds on
//! this crate's instance/validation machinery, so `spq-core` cannot depend on
//! it directly). The engine dispatches to it through a process-global
//! evaluator hook that `spq_sketch::install()` registers once at startup.

use crate::instance::Instance;
use crate::naive::evaluate_naive;
use crate::options::SpqOptions;
use crate::package::EvaluationResult;
use crate::silp::Silp;
use crate::summary_search::evaluate_summary_search;
use crate::translate::translate;
use crate::{Result, SpqError};
use spq_mcdb::Relation;
use spq_spaql::{bind, parse};
use std::sync::OnceLock;

/// Which evaluation algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1: the SAA optimize/validate loop.
    Naive,
    /// Algorithm 2: conservative summary approximations.
    SummarySearch,
    /// Partition–sketch–refine evaluation that scales to very large
    /// relations; provided by the `spq-sketch` crate (call
    /// `spq_sketch::install()` before evaluating with this variant).
    SketchRefine,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Naive => write!(f, "Naive"),
            Algorithm::SummarySearch => write!(f, "SummarySearch"),
            Algorithm::SketchRefine => write!(f, "SketchRefine"),
        }
    }
}

impl std::str::FromStr for Algorithm {
    type Err = SpqError;

    /// Parse an algorithm name, ignoring case, hyphens and underscores
    /// (`"naive"`, `"summary-search"`, `"SketchRefine"`, ...).
    fn from_str(s: &str) -> Result<Algorithm> {
        let canon: String = s
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase();
        match canon.as_str() {
            "naive" => Ok(Algorithm::Naive),
            "summarysearch" => Ok(Algorithm::SummarySearch),
            "sketchrefine" => Ok(Algorithm::SketchRefine),
            _ => Err(SpqError::Unsupported(format!(
                "unknown algorithm `{s}` (expected Naive, SummarySearch or SketchRefine)"
            ))),
        }
    }
}

/// Signature of the SketchRefine evaluator provided by the `spq-sketch`
/// crate.
pub type SketchRefineEvaluator = fn(&Instance<'_>) -> Result<EvaluationResult>;

static SKETCH_REFINE: OnceLock<SketchRefineEvaluator> = OnceLock::new();

/// Register the SketchRefine evaluator. Called (idempotently) by
/// `spq_sketch::install()`; the first registration wins.
pub fn register_sketch_refine(evaluator: SketchRefineEvaluator) {
    let _ = SKETCH_REFINE.set(evaluator);
}

/// True once a SketchRefine evaluator has been registered.
pub fn sketch_refine_available() -> bool {
    SKETCH_REFINE.get().is_some()
}

fn evaluate_sketch_refine(instance: &Instance<'_>) -> Result<EvaluationResult> {
    match SKETCH_REFINE.get() {
        Some(evaluator) => evaluator(instance),
        None => Err(SpqError::Unsupported(
            "Algorithm::SketchRefine needs the spq-sketch crate; \
             call spq_sketch::install() once before evaluating"
                .into(),
        )),
    }
}

/// The stochastic package query engine.
#[derive(Debug, Clone, Default)]
pub struct SpqEngine {
    options: SpqOptions,
}

impl SpqEngine {
    /// Create an engine with the given options.
    pub fn new(options: SpqOptions) -> Self {
        SpqEngine { options }
    }

    /// The engine's options.
    pub fn options(&self) -> &SpqOptions {
        &self.options
    }

    /// Mutable access to the options (e.g. to tweak the seed between runs).
    pub fn options_mut(&mut self) -> &mut SpqOptions {
        &mut self.options
    }

    /// Parse, bind, translate and evaluate an sPaQL query string.
    pub fn evaluate(
        &self,
        relation: &Relation,
        query: &str,
        algorithm: Algorithm,
    ) -> Result<EvaluationResult> {
        let silp = self.compile(relation, query)?;
        self.evaluate_silp(relation, silp, algorithm)
    }

    /// Parse, bind and translate a query without evaluating it.
    pub fn compile(&self, relation: &Relation, query: &str) -> Result<Silp> {
        let parsed = {
            let _span = spq_obs::span("parse");
            parse(query)?
        };
        let bound = {
            let _span = spq_obs::span("bind");
            bind(&parsed, relation)?
        };
        let _span = spq_obs::span("translate");
        translate(&bound, relation)
    }

    /// Evaluate an already-translated SILP.
    pub fn evaluate_silp(
        &self,
        relation: &Relation,
        silp: Silp,
        algorithm: Algorithm,
    ) -> Result<EvaluationResult> {
        let _span = spq_obs::span("solve");
        let instance = Instance::new(relation, silp, self.options.clone())?;
        match algorithm {
            Algorithm::Naive => evaluate_naive(&instance),
            Algorithm::SummarySearch => evaluate_summary_search(&instance),
            Algorithm::SketchRefine => evaluate_sketch_refine(&instance),
        }
    }

    /// Prepare an [`Instance`] for callers that want to drive the lower-level
    /// APIs (formulations, validation, CSA-Solve) directly.
    pub fn prepare<'a>(&self, relation: &'a Relation, silp: Silp) -> Result<Instance<'a>> {
        Instance::new(relation, silp, self.options.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;

    fn relation() -> Relation {
        RelationBuilder::new("stock_investments")
            .deterministic_text("stock", vec!["AAPL", "MSFT", "TSLA", "NVDA"])
            .deterministic_f64("price", vec![100.0, 100.0, 100.0, 100.0])
            .stochastic(
                "Gain",
                NormalNoise::around(vec![5.0, 4.0, 1.0, 0.5], vec![1.0, 8.0, 0.2, 0.1]),
            )
            .build()
            .unwrap()
    }

    const QUERY: &str = "SELECT PACKAGE(*) AS Portfolio FROM Stock_Investments \
                         SUCH THAT SUM(price) <= 300 AND \
                         SUM(Gain) >= -1 WITH PROBABILITY >= 0.9 \
                         MAXIMIZE EXPECTED SUM(Gain)";

    #[test]
    fn end_to_end_with_both_algorithms() {
        let rel = relation();
        let engine = SpqEngine::new(SpqOptions::for_tests().with_initial_scenarios(15));
        for algorithm in [Algorithm::Naive, Algorithm::SummarySearch] {
            let result = engine.evaluate(&rel, QUERY, algorithm).unwrap();
            assert!(result.feasible, "{algorithm} failed: {:?}", result.stats);
            let package = result.package.unwrap();
            assert!(package.size() > 0 && package.size() <= 3);
            // The description mentions actual stock names.
            let text = package.describe(&rel);
            assert!(text.contains("price"));
        }
    }

    #[test]
    fn compile_produces_a_silp() {
        let rel = relation();
        let engine = SpqEngine::new(SpqOptions::for_tests());
        let silp = engine.compile(&rel, QUERY).unwrap();
        assert_eq!(silp.num_vars(), 4);
        assert_eq!(silp.probabilistic_constraints().len(), 1);
    }

    #[test]
    fn parse_errors_are_propagated() {
        let rel = relation();
        let engine = SpqEngine::new(SpqOptions::for_tests());
        assert!(engine
            .evaluate(&rel, "SELECT nothing", Algorithm::Naive)
            .is_err());
        assert!(engine
            .evaluate(
                &rel,
                "SELECT PACKAGE(*) FROM t SUCH THAT SUM(missing) <= 1",
                Algorithm::Naive
            )
            .is_err());
    }

    #[test]
    fn prepare_exposes_the_low_level_instance() {
        let rel = relation();
        let engine = SpqEngine::new(SpqOptions::for_tests());
        let silp = engine.compile(&rel, QUERY).unwrap();
        let instance = engine.prepare(&rel, silp).unwrap();
        assert_eq!(instance.num_vars(), 4);
        assert_eq!(engine.options().seed, instance.options.seed);
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Naive.to_string(), "Naive");
        assert_eq!(Algorithm::SummarySearch.to_string(), "SummarySearch");
        assert_eq!(Algorithm::SketchRefine.to_string(), "SketchRefine");
    }

    #[test]
    fn algorithm_from_str_accepts_flexible_spellings() {
        for (text, expected) in [
            ("naive", Algorithm::Naive),
            ("Naive", Algorithm::Naive),
            ("summarysearch", Algorithm::SummarySearch),
            ("summary-search", Algorithm::SummarySearch),
            ("Summary_Search", Algorithm::SummarySearch),
            ("SketchRefine", Algorithm::SketchRefine),
            ("sketch-refine", Algorithm::SketchRefine),
            ("SKETCH_REFINE", Algorithm::SketchRefine),
        ] {
            assert_eq!(text.parse::<Algorithm>().unwrap(), expected, "{text}");
        }
        assert!("cplex".parse::<Algorithm>().is_err());
        assert!("".parse::<Algorithm>().is_err());
    }

    #[test]
    fn sketch_refine_without_registration_is_a_clear_error() {
        // spq-core's own test binary never links spq-sketch, so the hook is
        // guaranteed to be empty here.
        assert!(!sketch_refine_available());
        let rel = relation();
        let engine = SpqEngine::new(SpqOptions::for_tests());
        let err = engine
            .evaluate(&rel, QUERY, Algorithm::SketchRefine)
            .unwrap_err();
        assert!(
            err.to_string().contains("spq_sketch::install"),
            "unexpected error: {err}"
        );
    }
}
