//! Back-compatibility shim: out-of-sample validation moved to the
//! [`crate::validation`] module (blocked, parallel, one-pass engine with
//! adaptive `M̂`). The old `crate::validate::*` paths keep working.

pub use crate::validation::{
    required_successes, validate, validate_with, ConstraintValidation, EarlyStop,
    ValidationOptions, ValidationReport,
};
