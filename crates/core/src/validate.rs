//! Out-of-sample validation (Section 3.2).
//!
//! A candidate package is *validation-feasible* when, for every probabilistic
//! constraint, it satisfies the inner constraint in at least a fraction `p`
//! of `M̂` out-of-sample scenarios. Validation streams scenarios in chunks,
//! generating realizations only for the tuples that actually appear in the
//! package, so memory stays proportional to the package size regardless of
//! `M̂`.

use crate::bounds::{epsilon_upper_bound, omega_bounds, OmegaBounds};
use crate::instance::Instance;
use crate::silp::{ConstraintKind, SilpObjective};
use crate::Result;
use serde::{Deserialize, Serialize};
use spq_solver::Sense;

/// Validation outcome for one probabilistic constraint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConstraintValidation {
    /// Index of the constraint in `silp.constraints`.
    pub constraint_index: usize,
    /// Target probability `p`.
    pub probability: f64,
    /// Fraction of validation scenarios whose inner constraint held.
    pub satisfied_fraction: f64,
    /// The paper's `p`-surplus `r = satisfied_fraction − p`.
    pub surplus: f64,
    /// Whether the constraint is validation-feasible (`Y ≥ ⌈p·M̂⌉`).
    pub feasible: bool,
}

/// The result of validating a candidate package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationReport {
    /// True when every probabilistic constraint is validation-feasible.
    pub feasible: bool,
    /// Per-probabilistic-constraint details.
    pub constraints: Vec<ConstraintValidation>,
    /// Estimated objective value of the package under validation data
    /// (expectations for linear objectives, satisfied fraction for
    /// probability objectives).
    pub objective_estimate: f64,
    /// The certificate `ε⁽q⁾` of Section 5.4 (`+∞` when no bound applies).
    pub epsilon_upper_bound: f64,
    /// Number of validation scenarios used.
    pub scenarios_used: usize,
}

impl ValidationReport {
    /// The worst (most negative) surplus across the probabilistic
    /// constraints; `0` when there are none.
    pub fn min_surplus(&self) -> f64 {
        if self.constraints.is_empty() {
            0.0
        } else {
            self.constraints
                .iter()
                .map(|c| c.surplus)
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// Chunk size used when streaming validation scenarios.
const CHUNK: usize = 2048;

/// Count, over `m_hat` validation scenarios, how many satisfy the inner
/// constraint `Σ_i coeff_i x_i ⊙ rhs` for the package `x` (positions with
/// `x > 0` only are realized).
fn count_satisfied(
    instance: &Instance<'_>,
    column: &str,
    x: &[f64],
    sense: Sense,
    rhs: f64,
    m_hat: usize,
) -> Result<usize> {
    let support: Vec<usize> = x
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(i, _)| i)
        .collect();
    let weights: Vec<f64> = support.iter().map(|&i| x[i]).collect();
    let mut satisfied = 0usize;
    let mut start = 0usize;
    while start < m_hat {
        let end = (start + CHUNK).min(m_hat);
        if support.is_empty() {
            // The empty package has score 0 in every scenario.
            if sense.check(0.0, rhs, 1e-9) {
                satisfied += end - start;
            }
        } else {
            let rows = instance.validation_rows(column, &support, start..end)?;
            for row in &rows {
                let score: f64 = row.iter().zip(&weights).map(|(s, w)| s * w).sum();
                if sense.check(score, rhs, 1e-9) {
                    satisfied += 1;
                }
            }
        }
        start = end;
    }
    Ok(satisfied)
}

/// Validate a candidate package `x` (multiplicities over the candidate
/// tuples) against `m_hat` out-of-sample scenarios.
pub fn validate(instance: &Instance<'_>, x: &[f64], m_hat: usize) -> Result<ValidationReport> {
    let silp = &instance.silp;
    let mut constraints = Vec::new();
    let mut feasible = true;

    for (ci, c) in silp.constraints.iter().enumerate() {
        let ConstraintKind::Probabilistic { probability } = c.kind else {
            continue;
        };
        let column = c.coeff.column().ok_or_else(|| {
            crate::error::SpqError::Internal("probabilistic constraint without a column".into())
        })?;
        let satisfied = count_satisfied(instance, column, x, c.sense, c.rhs, m_hat)?;
        let fraction = satisfied as f64 / m_hat.max(1) as f64;
        let required = (probability * m_hat as f64).ceil() as usize;
        let ok = satisfied >= required;
        feasible &= ok;
        constraints.push(ConstraintValidation {
            constraint_index: ci,
            probability,
            satisfied_fraction: fraction,
            surplus: fraction - probability,
            feasible: ok,
        });
    }

    // Objective estimate.
    let objective_estimate = match &silp.objective {
        SilpObjective::Linear { coeff, .. } => {
            let coeffs = instance.coefficients(coeff)?;
            coeffs.iter().zip(x).map(|(c, v)| c * v).sum()
        }
        SilpObjective::Probability {
            attribute,
            sense,
            threshold,
            ..
        } => {
            let satisfied = count_satisfied(instance, attribute, x, *sense, *threshold, m_hat)?;
            satisfied as f64 / m_hat.max(1) as f64
        }
    };

    let bounds: OmegaBounds = omega_bounds(instance);
    let epsilon = epsilon_upper_bound(silp.objective.direction(), objective_estimate, &bounds);

    Ok(ValidationReport {
        feasible,
        constraints,
        objective_estimate,
        epsilon_upper_bound: epsilon,
        scenarios_used: m_hat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, Direction, Silp, SilpConstraint};
    use spq_mcdb::vg::{Degenerate, NormalNoise};
    use spq_mcdb::{Relation, RelationBuilder};

    fn relation() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![10.0, 20.0, 30.0])
            // Tuple gains: strongly positive, mildly positive, negative.
            .stochastic("gain", NormalNoise::around(vec![10.0, 1.0, -5.0], 1.0))
            .stochastic("fixed", Degenerate::new(vec![1.0, 2.0, 3.0]))
            .build()
            .unwrap()
    }

    fn silp_with_constraint(sense: Sense, rhs: f64, p: f64) -> Silp {
        Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2],
            repeat_bound: None,
            constraints: vec![SilpConstraint {
                name: "risk".into(),
                coeff: CoeffSource::Stochastic("gain".into()),
                sense,
                rhs,
                kind: ConstraintKind::Probabilistic { probability: p },
            }],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn clearly_feasible_package_validates() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            silp_with_constraint(Sense::Ge, 0.0, 0.9),
            SpqOptions::for_tests(),
        )
        .unwrap();
        // One copy of tuple 0 (mean gain 10, sd 1): Pr(gain >= 0) ~ 1.
        let report = validate(&inst, &[1.0, 0.0, 0.0], 2000).unwrap();
        assert!(report.feasible);
        assert_eq!(report.constraints.len(), 1);
        assert!(report.constraints[0].surplus > 0.05);
        assert!((report.objective_estimate - 10.0).abs() < 0.5);
        assert_eq!(report.scenarios_used, 2000);
    }

    #[test]
    fn clearly_infeasible_package_fails_validation_with_negative_surplus() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            silp_with_constraint(Sense::Ge, 0.0, 0.9),
            SpqOptions::for_tests(),
        )
        .unwrap();
        // Tuple 2 has mean gain -5: Pr(gain >= 0) ~ 0.
        let report = validate(&inst, &[0.0, 0.0, 1.0], 2000).unwrap();
        assert!(!report.feasible);
        assert!(report.constraints[0].surplus < -0.5);
        assert!(!report.constraints[0].feasible);
    }

    #[test]
    fn borderline_package_has_surplus_near_zero() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            // Tuple 1 has mean 1, sd 1: Pr(gain >= 1) ~ 0.5.
            silp_with_constraint(Sense::Ge, 1.0, 0.5),
            SpqOptions::for_tests(),
        )
        .unwrap();
        let report = validate(&inst, &[0.0, 1.0, 0.0], 4000).unwrap();
        assert!(report.constraints[0].surplus.abs() < 0.05);
    }

    #[test]
    fn empty_package_scores_zero() {
        let rel = relation();
        let inst = Instance::new(
            &rel,
            silp_with_constraint(Sense::Ge, -1.0, 0.9),
            SpqOptions::for_tests(),
        )
        .unwrap();
        // Empty package: score 0 >= -1 always -> feasible.
        let report = validate(&inst, &[0.0, 0.0, 0.0], 500).unwrap();
        assert!(report.feasible);
        assert_eq!(report.constraints[0].satisfied_fraction, 1.0);
        assert_eq!(report.objective_estimate, 0.0);

        // But with rhs 1 the empty package fails.
        let inst = Instance::new(
            &rel,
            silp_with_constraint(Sense::Ge, 1.0, 0.9),
            SpqOptions::for_tests(),
        )
        .unwrap();
        let report = validate(&inst, &[0.0, 0.0, 0.0], 500).unwrap();
        assert!(!report.feasible);
    }

    #[test]
    fn degenerate_column_gives_exact_fractions() {
        let rel = relation();
        let silp = Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2],
            repeat_bound: None,
            constraints: vec![SilpConstraint {
                name: "fixed".into(),
                coeff: CoeffSource::Stochastic("fixed".into()),
                sense: Sense::Le,
                rhs: 4.0,
                kind: ConstraintKind::Probabilistic { probability: 0.8 },
            }],
            objective: SilpObjective::Linear {
                direction: Direction::Minimize,
                coeff: CoeffSource::Stochastic("fixed".into()),
                expectation: true,
            },
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        // Package {tuple0: 2, tuple1: 1} has fixed score 2*1 + 2 = 4 <= 4 in
        // every scenario (degenerate), so the fraction is exactly 1.
        let report = validate(&inst, &[2.0, 1.0, 0.0], 300).unwrap();
        assert!(report.feasible);
        assert_eq!(report.constraints[0].satisfied_fraction, 1.0);
        assert_eq!(report.objective_estimate, 4.0);
        // Package {tuple2: 2} scores 6 > 4 in every scenario.
        let report = validate(&inst, &[0.0, 0.0, 2.0], 300).unwrap();
        assert_eq!(report.constraints[0].satisfied_fraction, 0.0);
        assert!(!report.feasible);
    }

    #[test]
    fn probability_objective_estimate_is_a_fraction() {
        let rel = relation();
        let silp = Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2],
            repeat_bound: None,
            constraints: vec![],
            objective: SilpObjective::Probability {
                direction: Direction::Maximize,
                attribute: "gain".into(),
                sense: Sense::Ge,
                threshold: 5.0,
            },
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        // Tuple 0 (mean 10, sd 1): Pr(gain >= 5) ~ 1.
        let report = validate(&inst, &[1.0, 0.0, 0.0], 1000).unwrap();
        assert!(report.objective_estimate > 0.99);
        assert!(report.feasible); // no probabilistic constraints
        assert!(report.constraints.is_empty());
        // Tuple 2 (mean -5): Pr(gain >= 5) ~ 0.
        let report = validate(&inst, &[0.0, 0.0, 1.0], 1000).unwrap();
        assert!(report.objective_estimate < 0.01);
    }

    #[test]
    fn multiple_probabilistic_constraints_all_validated() {
        let rel = relation();
        let mut silp = silp_with_constraint(Sense::Ge, 0.0, 0.9);
        silp.constraints.push(SilpConstraint {
            name: "cap".into(),
            coeff: CoeffSource::Stochastic("gain".into()),
            sense: Sense::Le,
            rhs: 20.0,
            kind: ConstraintKind::Probabilistic { probability: 0.9 },
        });
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let report = validate(&inst, &[1.0, 0.0, 0.0], 1000).unwrap();
        assert_eq!(report.constraints.len(), 2);
        assert!(report.feasible);
        // Both constraints hold with large surplus for one copy of tuple 0.
        assert!(report.constraints.iter().all(|c| c.surplus > 0.0));
    }
}
