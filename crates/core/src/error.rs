//! Error type for the SPQ engine.

use std::fmt;

/// Errors raised while translating, formulating, or evaluating a stochastic
/// package query.
#[derive(Debug, Clone, PartialEq)]
pub enum SpqError {
    /// Error from the Monte Carlo database substrate.
    Mcdb(spq_mcdb::McdbError),
    /// Error from the MILP solver substrate.
    Solver(spq_solver::SolverError),
    /// Error from the sPaQL parser/binder.
    Spaql(spq_spaql::SpaqlError),
    /// The query uses a feature the engine does not support.
    Unsupported(String),
    /// The query (or an intermediate formulation) is infeasible and no
    /// package can be produced.
    Infeasible(String),
    /// The evaluation budget (wall-clock or scenario limit) was exhausted
    /// without finding a feasible package.
    BudgetExhausted(String),
    /// A caller-supplied argument is out of range (e.g. a zero out-of-sample
    /// validation budget, which would make every probabilistic constraint
    /// vacuously feasible).
    InvalidArgument(String),
    /// An internal invariant was violated.
    Internal(String),
}

impl fmt::Display for SpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpqError::Mcdb(e) => write!(f, "probabilistic database error: {e}"),
            SpqError::Solver(e) => write!(f, "solver error: {e}"),
            SpqError::Spaql(e) => write!(f, "sPaQL error: {e}"),
            SpqError::Unsupported(msg) => write!(f, "unsupported query feature: {msg}"),
            SpqError::Infeasible(msg) => write!(f, "query is infeasible: {msg}"),
            SpqError::BudgetExhausted(msg) => write!(f, "evaluation budget exhausted: {msg}"),
            SpqError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SpqError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for SpqError {}

impl From<spq_mcdb::McdbError> for SpqError {
    fn from(e: spq_mcdb::McdbError) -> Self {
        SpqError::Mcdb(e)
    }
}

impl From<spq_solver::SolverError> for SpqError {
    fn from(e: spq_solver::SolverError) -> Self {
        SpqError::Solver(e)
    }
}

impl From<spq_spaql::SpaqlError> for SpqError {
    fn from(e: spq_spaql::SpaqlError) -> Self {
        SpqError::Spaql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: SpqError = spq_mcdb::McdbError::UnknownColumn("gain".into()).into();
        assert!(e.to_string().contains("gain"));
        let e: SpqError = spq_solver::SolverError::Unbounded.into();
        assert!(e.to_string().contains("unbounded"));
        let e: SpqError = spq_spaql::SpaqlError::UnknownAttribute("x".into()).into();
        assert!(e.to_string().contains('x'));
        assert!(SpqError::Infeasible("no package".into())
            .to_string()
            .contains("no package"));
        assert!(SpqError::BudgetExhausted("limit".into())
            .to_string()
            .contains("limit"));
        assert!(SpqError::InvalidArgument("m_hat == 0".into())
            .to_string()
            .contains("m_hat"));
    }
}
