//! Choosing the conservativeness level α (Section 5.2).
//!
//! CSA-Solve looks for the *minimally conservative* α for each probabilistic
//! constraint: the smallest α whose validated `p`-surplus
//! `r(α) = (fraction of validation scenarios satisfied) − p` is still
//! nonnegative. The paper fits a smooth curve — an arctangent was found to be
//! the most accurate — through the historical `(α, r)` points and solves
//! `R(α) = 0`. This module implements that fit plus the grid snapping
//! (`α ∈ {Z/M, 2Z/M, …, 1}`) and the fallback heuristics used before two
//! distinct history points exist.

/// History of `(α, r)` observations for one probabilistic constraint.
#[derive(Debug, Clone, Default)]
pub struct AlphaHistory {
    points: Vec<(f64, f64)>,
}

impl AlphaHistory {
    /// Empty history.
    pub fn new() -> Self {
        AlphaHistory::default()
    }

    /// Record an observation.
    pub fn record(&mut self, alpha: f64, surplus: f64) {
        self.points.push((alpha, surplus));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The most recently recorded point.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }
}

/// An arctangent fit `r(α) ≈ a·atan(b·(α − c)) + d`.
#[derive(Debug, Clone, Copy)]
pub struct ArctanFit {
    /// Amplitude.
    pub a: f64,
    /// Steepness.
    pub b: f64,
    /// Horizontal shift.
    pub c: f64,
    /// Vertical shift.
    pub d: f64,
    /// Sum of squared errors of the fit.
    pub sse: f64,
}

impl ArctanFit {
    /// Evaluate the fitted curve.
    pub fn evaluate(&self, alpha: f64) -> f64 {
        self.a * (self.b * (alpha - self.c)).atan() + self.d
    }

    /// Solve `r(α) = 0` for α, if a solution exists.
    pub fn zero(&self) -> Option<f64> {
        if self.a.abs() < 1e-12 || self.b.abs() < 1e-12 {
            return None;
        }
        let inner = -self.d / self.a;
        if inner.abs() >= std::f64::consts::FRAC_PI_2 {
            return None;
        }
        Some(self.c + inner.tan() / self.b)
    }
}

/// Fit `r(α) ≈ a·atan(b·(α − c)) + d` to the points by a coarse grid search
/// over `(b, c)` with a closed-form least-squares solve for `(a, d)`.
pub fn fit_arctan(points: &[(f64, f64)]) -> Option<ArctanFit> {
    let distinct: Vec<f64> = {
        let mut alphas: Vec<f64> = points.iter().map(|p| p.0).collect();
        alphas.sort_by(|x, y| x.partial_cmp(y).unwrap());
        alphas.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
        alphas
    };
    if distinct.len() < 2 {
        return None;
    }
    let mut best: Option<ArctanFit> = None;
    let b_grid = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];
    let c_grid: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    for &b in &b_grid {
        for &c in &c_grid {
            // Linear least squares for (a, d) on basis {atan(b(α−c)), 1}.
            let mut s_xx = 0.0;
            let mut s_x = 0.0;
            let mut s_xy = 0.0;
            let mut s_y = 0.0;
            let n = points.len() as f64;
            for &(alpha, r) in points {
                let x = (b * (alpha - c)).atan();
                s_xx += x * x;
                s_x += x;
                s_xy += x * r;
                s_y += r;
            }
            let det = n * s_xx - s_x * s_x;
            if det.abs() < 1e-12 {
                continue;
            }
            let a = (n * s_xy - s_x * s_y) / det;
            let d = (s_y - a * s_x) / n;
            let fit = ArctanFit {
                a,
                b,
                c,
                d,
                sse: 0.0,
            };
            let sse: f64 = points
                .iter()
                .map(|&(alpha, r)| {
                    let e = fit.evaluate(alpha) - r;
                    e * e
                })
                .sum();
            let fit = ArctanFit { sse, ..fit };
            if best.map(|bf| sse < bf.sse).unwrap_or(true) {
                best = Some(fit);
            }
        }
    }
    best
}

/// Snap α up to the grid `{step, 2·step, …, 1}`.
pub fn snap_to_grid(alpha: f64, step: f64) -> f64 {
    if step <= 0.0 {
        return alpha.clamp(0.0, 1.0);
    }
    let k = (alpha / step).ceil().max(1.0);
    (k * step).min(1.0)
}

/// Choose the next α for one constraint (the paper's
/// `GuessOptimalConservativeness`, specialized to a single constraint).
///
/// * `history` — past `(α, r)` observations;
/// * `p` — the constraint's probability bound, used as the first guess when
///   only the `α = 0` observation exists;
/// * `step` — the grid resolution `Z / M`.
pub fn guess_alpha(history: &AlphaHistory, p: f64, step: f64) -> f64 {
    let points = history.points();
    let last = history.last();

    // With fewer than two distinct α values, use simple heuristics.
    let distinct_alphas = {
        let mut alphas: Vec<f64> = points.iter().map(|pt| pt.0).collect();
        alphas.sort_by(|x, y| x.partial_cmp(y).unwrap());
        alphas.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
        alphas.len()
    };
    if distinct_alphas < 2 {
        return match last {
            None => snap_to_grid(p, step),
            Some((alpha, r)) if r < 0.0 => {
                // Infeasible: jump to p if we have not tried it, otherwise
                // move up by one grid step.
                let target = if alpha + 1e-12 < p { p } else { alpha + step };
                snap_to_grid(target.min(1.0), step)
            }
            Some((alpha, _)) => {
                // Feasible but (presumably) suboptimal: try one step lower.
                snap_to_grid((alpha - step).max(step), step)
            }
        };
    }

    let fitted = fit_arctan(points).and_then(|fit| fit.zero());
    let mut alpha = match fitted {
        Some(a) if a.is_finite() => a.clamp(step, 1.0),
        _ => {
            // Fallback: linear interpolation between the tightest bracketing
            // points, or a one-step move in the right direction.
            bracket_zero(points).unwrap_or_else(|| match last {
                Some((a, r)) if r < 0.0 => (a + step).min(1.0),
                Some((a, _)) => (a - step).max(step),
                None => p,
            })
        }
    };
    alpha = snap_to_grid(alpha, step);

    // Avoid proposing exactly the last α again: nudge one grid step in the
    // direction indicated by the last surplus.
    if let Some((last_alpha, r)) = last {
        if (alpha - last_alpha).abs() < step / 2.0 {
            alpha = if r < 0.0 {
                snap_to_grid((last_alpha + step).min(1.0), step)
            } else {
                snap_to_grid((last_alpha - step).max(step), step)
            };
        }
    }
    alpha
}

/// Linear interpolation of the zero crossing between the closest bracketing
/// `(α, r)` points, when one exists.
fn bracket_zero(points: &[(f64, f64)]) -> Option<f64> {
    let mut neg: Option<(f64, f64)> = None; // largest alpha with r < 0
    let mut pos: Option<(f64, f64)> = None; // smallest alpha with r >= 0
    for &(a, r) in points {
        if r < 0.0 {
            if neg.map(|(na, _)| a > na).unwrap_or(true) {
                neg = Some((a, r));
            }
        } else if pos.map(|(pa, _)| a < pa).unwrap_or(true) {
            pos = Some((a, r));
        }
    }
    match (neg, pos) {
        (Some((a0, r0)), Some((a1, r1))) if (r1 - r0).abs() > 1e-12 => {
            let t = -r0 / (r1 - r0);
            Some(a0 + t * (a1 - a0))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapping_rounds_up_to_the_grid() {
        assert_eq!(snap_to_grid(0.23, 0.1), 0.30000000000000004);
        assert_eq!(snap_to_grid(0.3, 0.1), 0.30000000000000004);
        assert_eq!(snap_to_grid(0.0, 0.1), 0.1);
        assert_eq!(snap_to_grid(1.7, 0.25), 1.0);
        assert_eq!(snap_to_grid(0.5, 0.0), 0.5);
    }

    #[test]
    fn first_guess_is_the_probability_bound() {
        let h = AlphaHistory::new();
        let a = guess_alpha(&h, 0.9, 0.1);
        assert!((a - 0.9).abs() < 1e-9);
    }

    #[test]
    fn infeasible_single_point_jumps_to_p_then_upward() {
        let mut h = AlphaHistory::new();
        h.record(0.0, -0.3);
        let a1 = guess_alpha(&h, 0.9, 0.1);
        assert!((a1 - 0.9).abs() < 1e-9);
        // If p itself was already tried (alpha = 0.9) and is still
        // infeasible, the guess moves upward.
        let mut h = AlphaHistory::new();
        h.record(0.9, -0.05);
        let a2 = guess_alpha(&h, 0.9, 0.1);
        assert!(a2 > 0.9);
        assert!(a2 <= 1.0);
    }

    #[test]
    fn feasible_single_point_moves_down() {
        let mut h = AlphaHistory::new();
        h.record(0.9, 0.08);
        let a = guess_alpha(&h, 0.9, 0.1);
        assert!(a < 0.9);
        assert!(a >= 0.1);
    }

    #[test]
    fn arctan_fit_recovers_a_monotone_curve() {
        // Synthesize points from a known arctangent and check the zero is
        // recovered approximately.
        let truth = ArctanFit {
            a: 0.3,
            b: 10.0,
            c: 0.55,
            d: 0.05,
            sse: 0.0,
        };
        let points: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let alpha = i as f64 / 10.0;
                (alpha, truth.evaluate(alpha))
            })
            .collect();
        let fit = fit_arctan(&points).unwrap();
        assert!(fit.sse < 0.05, "sse {}", fit.sse);
        let zero = fit.zero().unwrap();
        let true_zero = truth.zero().unwrap();
        assert!(
            (zero - true_zero).abs() < 0.1,
            "zero {zero} vs true {true_zero}"
        );
    }

    #[test]
    fn fit_requires_two_distinct_alphas() {
        assert!(fit_arctan(&[(0.5, 0.1)]).is_none());
        assert!(fit_arctan(&[(0.5, 0.1), (0.5, 0.2)]).is_none());
        assert!(fit_arctan(&[(0.4, -0.1), (0.6, 0.1)]).is_some());
    }

    #[test]
    fn guess_converges_towards_the_zero_crossing() {
        // r(α) crosses zero at 0.62; the guess after observing a bracketing
        // pair should land near it (snapped to the 0.05 grid).
        let mut h = AlphaHistory::new();
        h.record(0.4, -0.12);
        h.record(0.9, 0.20);
        let a = guess_alpha(&h, 0.9, 0.05);
        assert!(a > 0.4 && a < 0.9, "guess {a}");
    }

    #[test]
    fn guess_avoids_repeating_the_last_alpha() {
        let mut h = AlphaHistory::new();
        h.record(0.5, -0.01);
        h.record(0.6, -0.005);
        let a = guess_alpha(&h, 0.9, 0.1);
        assert!((a - 0.6).abs() > 0.04, "guess {a} should differ from 0.6");
    }

    #[test]
    fn bracket_zero_interpolates() {
        let z = bracket_zero(&[(0.2, -0.1), (0.8, 0.2)]).unwrap();
        assert!((z - 0.4).abs() < 1e-9);
        assert!(bracket_zero(&[(0.2, -0.1), (0.3, -0.05)]).is_none());
    }

    #[test]
    fn history_accessors() {
        let mut h = AlphaHistory::new();
        assert!(h.last().is_none());
        h.record(0.1, -0.2);
        h.record(0.2, 0.1);
        assert_eq!(h.points().len(), 2);
        assert_eq!(h.last(), Some((0.2, 0.1)));
    }
}
