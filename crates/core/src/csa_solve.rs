//! CSA-Solve (Algorithm 3): optimal summary selection.
//!
//! With the number of optimization scenarios `M` and summaries `Z` fixed,
//! CSA-Solve searches for the best Conservative Summary Approximation: for
//! every probabilistic constraint it looks for the minimally conservative
//! `α_k` (via validation-driven curve fitting, Section 5.2) and the best
//! scenario subsets `G_z(α_k)` (greedy selection by scenario score,
//! Section 5.3), solving a sequence of small reduced DILPs until it finds a
//! feasible, `(1 + ε)`-approximate solution, detects a cycle, or exhausts its
//! iteration budget.

use crate::alpha::{guess_alpha, AlphaHistory};
use crate::instance::Instance;
use crate::saa::{build_model, probability_objective_block, ProbBlock};
use crate::silp::{Direction, SilpConstraint};
use crate::summary::{build_summaries, partition_scenarios, SummarySpec};
use crate::validation::{validate_with, ValidationReport};
use crate::{Result, SpqError};
use spq_mcdb::ScenarioMatrix;
use spq_solver::{solve_full, Basis};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The outcome of one CSA-Solve run.
#[derive(Debug, Clone)]
pub struct CsaSolveOutcome {
    /// The returned solution (multiplicities over candidate tuples).
    pub x: Vec<f64>,
    /// Its validation report.
    pub validation: ValidationReport,
    /// Number of inner iterations performed.
    pub iterations: usize,
    /// Number of reduced DILPs solved.
    pub problems_solved: usize,
    /// Branch-and-bound nodes accumulated across solves.
    pub solver_nodes: usize,
    /// Simplex pivots accumulated across solves.
    pub lp_pivots: usize,
    /// Largest formulated problem size (coefficients).
    pub max_coefficients: usize,
    /// Final per-constraint conservativeness levels α.
    pub alphas: Vec<f64>,
    /// Total out-of-sample scenarios evaluated across this run's
    /// validations (adaptive early stopping makes this much smaller than
    /// `iterations × M̂`).
    pub validation_scenarios: usize,
    /// Basis of the last reduced DILP's root relaxation. Successive α
    /// re-solves keep the model shape (same `Z` rows, same variables), so
    /// this basis warm-starts them; callers carry it across (M, Z)
    /// escalations too — the solver drops it whenever the shape changed.
    pub final_basis: Option<Basis>,
}

/// Number of scenarios used to approximate a probability *objective* inside
/// the reduced DILP. Kept small so the CSA stays small; validation always
/// re-estimates the objective on the out-of-sample stream.
const CSA_OBJECTIVE_SCENARIOS: usize = 30;

fn solution_key(x: &[f64], alphas: &[f64]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for v in x {
        (v.round() as i64).hash(&mut hasher);
    }
    for a in alphas {
        ((a * 1e6).round() as i64).hash(&mut hasher);
    }
    hasher.finish()
}

fn better(direction: Direction, candidate: f64, incumbent: f64) -> bool {
    match direction {
        Direction::Minimize => candidate < incumbent,
        Direction::Maximize => candidate > incumbent,
    }
}

/// The probability bound of a constraint CSA-Solve treats as probabilistic.
/// A missing bound means the binder or translator misclassified the
/// constraint — surface that as an internal error instead of silently
/// assuming `p = 0.5` (which used to mask such bugs as bad packages).
fn constraint_probability(constraint: &SilpConstraint) -> Result<f64> {
    constraint.probability().ok_or_else(|| {
        SpqError::Internal(format!(
            "constraint `{}` reached CSA-Solve without a probability bound",
            constraint.name
        ))
    })
}

/// Run CSA-Solve for the given `M` optimization scenarios (already realized
/// in `matrices`, one per probabilistic constraint) and `Z` summaries.
///
/// `x0` is the solution of the probabilistically-unconstrained problem
/// (`None` when that problem was unbounded or infeasible, in which case the
/// search starts from a conservativeness level of `p` directly).
///
/// `warm_basis` seeds the first reduced DILP's LP relaxation (e.g. the
/// basis returned by a previous CSA-Solve run at a smaller `M`); it is
/// safely ignored when it does not fit the formulated model.
pub fn csa_solve(
    instance: &Instance<'_>,
    x0: Option<&[f64]>,
    matrices: &HashMap<usize, Arc<ScenarioMatrix>>,
    m: usize,
    z: usize,
    warm_basis: Option<&Basis>,
) -> Result<CsaSolveOutcome> {
    let silp = &instance.silp;
    let opts = &instance.options;
    let direction = silp.objective.direction();
    let prob_indices: Vec<usize> = silp
        .constraints
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind.is_probabilistic())
        .map(|(i, _)| i)
        .collect();
    let k = prob_indices.len();
    let probs: Vec<f64> = prob_indices
        .iter()
        .map(|&ci| constraint_probability(&silp.constraints[ci]))
        .collect::<Result<_>>()?;
    // More summaries than scenarios are meaningless (each summary covers at
    // least one scenario): clamp Z into [1, M] so the α step and the
    // scenario partitioning stay consistent when a caller over-asks.
    let z = z.clamp(1, m.max(1));
    let partitions = partition_scenarios(m, z);
    let step = (z as f64 / m.max(1) as f64).clamp(1e-9, 1.0);

    let mut histories: Vec<AlphaHistory> = vec![AlphaHistory::new(); k];
    let mut alphas: Vec<f64> = vec![0.0; k];
    let mut seen: HashSet<u64> = HashSet::new();
    let mut best: Option<(Vec<f64>, ValidationReport)> = None;
    let mut last: Option<(Vec<f64>, ValidationReport)> = None;

    let mut problems_solved = 0usize;
    let mut solver_nodes = 0usize;
    let mut lp_pivots = 0usize;
    let mut max_coefficients = 0usize;
    let mut iterations = 0usize;
    // Incumbent basis: seeded by the caller, refreshed after every solve so
    // the next α re-solve (same shape, new summary coefficients) restarts
    // from the previous vertex instead of from scratch.
    let mut basis: Option<Basis> = warm_basis.cloned();

    // Current solution; `None` forces an immediate formulate/solve with the
    // initial α guesses.
    let mut current: Option<Vec<f64>> = x0.map(|x| x.to_vec());
    if current.is_none() {
        for kk in 0..k {
            alphas[kk] = guess_alpha(&histories[kk], probs[kk], step);
        }
    }
    let mut validation_scenarios = 0usize;

    // Feasible, within the user's ε bound, and every surplus nonnegative:
    // the paper's termination test.
    let accepts = |report: &ValidationReport| {
        let eps_ok = report.epsilon_upper_bound <= opts.epsilon || !opts.epsilon.is_finite();
        report.feasible && eps_ok && report.constraints.iter().all(|c| c.surplus >= 0.0)
    };

    loop {
        if iterations >= opts.max_csa_iterations || opts.deadline.expired() {
            break;
        }
        iterations += 1;

        // Solve the CSA for the current α when we do not have a solution yet
        // (first iteration without a warm start, or after updating α).
        if current.is_none() {
            let mut blocks = Vec::with_capacity(k);
            // Convergence acceleration is only sound when the previous
            // solution was feasible (the paper applies it when α is being
            // *decreased*); otherwise it would keep an infeasible solution
            // alive in the reduced problem.
            let last_feasible = last.as_ref().map(|(_, r)| r.feasible).unwrap_or(false);
            for (kk, &ci) in prob_indices.iter().enumerate() {
                let constraint = &silp.constraints[ci];
                let prev = last.as_ref().map(|(x, _)| x.as_slice());
                let spec = SummarySpec {
                    alpha: alphas[kk],
                    sense: constraint.sense,
                    previous_solution: prev,
                    accelerate: last_feasible,
                };
                let rows = build_summaries(&matrices[&ci], &partitions, &spec);
                blocks.push(ProbBlock::with_probability(ci, rows, probs[kk]));
            }
            let objective_block = if silp.objective.is_probability() {
                probability_objective_block(instance, CSA_OBJECTIVE_SCENARIOS.min(m.max(1)))?
            } else {
                None
            };
            let formulation = build_model(instance, &blocks, objective_block.as_ref())?;
            max_coefficients = max_coefficients.max(formulation.num_coefficients());
            let mut solver_opts = opts.solver.clone();
            // Clone rather than move: a solve that stops before its root
            // relaxation is optimal returns no basis, and the incumbent
            // must survive for the next re-solve.
            solver_opts.warm_start = basis.clone();
            let res = solve_full(&formulation.model, &solver_opts)?;
            problems_solved += 1;
            solver_nodes += res.nodes;
            lp_pivots += res.lp_iterations;
            if res.basis.is_some() {
                basis = res.basis;
            }
            match res.solution {
                Some(sol) => current = Some(formulation.multiplicities(&sol)),
                None => break, // over-conservative or genuinely infeasible CSA
            }
        }

        let x = current.clone().expect("solution present");

        // Cycle detection on (x, α).
        let key = solution_key(&x, &alphas);
        if !seen.insert(key) {
            break;
        }

        // Validate (adaptively: far-from-p constraints settle after a few
        // stages) and record the p-surpluses. A candidate the adaptive pass
        // would accept as the final answer is confirmed against the full
        // M̂ budget first, so the returned report is never an early-stopped
        // estimate.
        let mut report = validate_with(instance, &x, &opts.search_validation())?;
        validation_scenarios += report.scenarios_used;
        if report.interrupted && !opts.deadline.is_cancelled() {
            // The wall-clock budget expired mid-validation; this candidate
            // is the last one (the loop breaks at the top next pass), so
            // give it its certificate with one deadline-exempt pass.
            report = validate_with(instance, &x, &opts.certificate_validation())?;
            validation_scenarios += report.scenarios_used;
        } else if accepts(&report) && report.early_stopped {
            // An accepted candidate terminates the search, so this confirm
            // IS the answer's certificate: run it deadline-exempt (one
            // bounded pass) so a deadline firing mid-confirm cannot leave
            // the returned package with a partial report.
            let confirmed = validate_with(instance, &x, &opts.certificate_validation())?;
            validation_scenarios += confirmed.scenarios_used;
            report = confirmed;
        }
        for (kk, _) in prob_indices.iter().enumerate() {
            if let Some(cv) = report.constraints.get(kk) {
                histories[kk].record(alphas[kk], cv.surplus);
            }
        }
        if report.feasible {
            let replace = match &best {
                None => true,
                Some((_, b)) => {
                    !b.feasible
                        || better(direction, report.objective_estimate, b.objective_estimate)
                }
            };
            if replace {
                best = Some((x.clone(), report.clone()));
            }
        } else if best.is_none() {
            best = Some((x.clone(), report.clone()));
        }
        last = Some((x.clone(), report.clone()));

        // Termination: feasible and (1 + ε)-approximate (already confirmed
        // at the full budget above when the adaptive pass stopped early).
        if accepts(&report) {
            return Ok(CsaSolveOutcome {
                x,
                validation: report,
                iterations,
                problems_solved,
                solver_nodes,
                lp_pivots,
                max_coefficients,
                alphas,
                validation_scenarios,
                final_basis: basis,
            });
        }

        // Update α and force a re-solve on the next loop iteration.
        for kk in 0..k {
            alphas[kk] = guess_alpha(&histories[kk], probs[kk], step);
        }
        current = None;
    }

    // Out of budget or cycled: return the best solution seen (feasible if one
    // exists, otherwise the most recent candidate).
    let (x, mut validation) = match (best, last) {
        (Some(b), _) => b,
        (None, Some(l)) => l,
        (None, None) => {
            // No CSA produced any solution at all: report an empty, infeasible
            // package.
            let x = vec![0.0; silp.num_vars()];
            let validation = validate_with(instance, &x, &opts.full_validation())?;
            (x, validation)
        }
    };
    // The best candidate may carry an early-stopped report (e.g. its
    // validation was adaptive and the search then ran out of budget).
    // Anchor the returned report to the full M̂ — deadline-exempt, since
    // this is the answer's certificate (cancellation still interrupts, in
    // which case the original report stands).
    if validation.early_stopped && !opts.deadline.is_cancelled() {
        let full = validate_with(instance, &x, &opts.certificate_validation())?;
        validation_scenarios += full.scenarios_used;
        if !full.interrupted {
            validation = full;
        }
    }
    Ok(CsaSolveOutcome {
        x,
        validation,
        iterations,
        problems_solved,
        solver_nodes,
        lp_pivots,
        max_coefficients,
        alphas,
        validation_scenarios,
        final_basis: basis,
    })
}

/// Realize the optimization scenario matrices needed by CSA-Solve (one per
/// probabilistic constraint).
pub fn realize_matrices(
    instance: &Instance<'_>,
    m: usize,
) -> Result<HashMap<usize, Arc<ScenarioMatrix>>> {
    let mut matrices = HashMap::new();
    for (ci, c) in instance.silp.constraints.iter().enumerate() {
        if !c.kind.is_probabilistic() {
            continue;
        }
        let column = c.coeff.column().ok_or_else(|| {
            crate::error::SpqError::Internal("probabilistic constraint without a column".into())
        })?;
        matrices.insert(ci, instance.optimization_matrix(column, m)?);
    }
    Ok(matrices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, ConstraintKind, Silp, SilpConstraint, SilpObjective};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::{Relation, RelationBuilder};
    use spq_solver::Sense;

    /// A portfolio-like relation where high-mean tuples also carry high
    /// variance, so the unconstrained optimum is typically infeasible for the
    /// risk constraint and CSA-Solve has to search for the right α.
    fn relation() -> Relation {
        let means = vec![6.0, 5.5, 5.0, 1.0, 0.9, 0.8, 0.7, 0.6];
        let sds = vec![8.0, 7.0, 6.5, 0.3, 0.3, 0.3, 0.2, 0.2];
        RelationBuilder::new("p")
            .deterministic_f64("price", vec![100.0; 8])
            .stochastic("gain", NormalNoise::around(means, sds))
            .build()
            .unwrap()
    }

    fn silp() -> Silp {
        Silp {
            relation: "p".into(),
            tuples: (0..8).collect(),
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "count".into(),
                    coeff: CoeffSource::Constant(1.0),
                    sense: Sense::Le,
                    rhs: 4.0,
                    kind: ConstraintKind::Deterministic,
                },
                SilpConstraint {
                    name: "risk".into(),
                    coeff: CoeffSource::Stochastic("gain".into()),
                    sense: Sense::Ge,
                    rhs: 0.0,
                    kind: ConstraintKind::Probabilistic { probability: 0.9 },
                },
            ],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn csa_solve_finds_a_feasible_package() {
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.validation_scenarios = 800;
        let inst = Instance::new(&rel, silp(), opts).unwrap();
        let m = 30;
        let matrices = realize_matrices(&inst, m).unwrap();
        assert_eq!(matrices.len(), 1);
        // Warm start from the unconstrained optimum (all budget on the risky
        // high-mean tuples).
        let x0 = vec![4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let outcome = csa_solve(&inst, Some(&x0), &matrices, m, 1, None).unwrap();
        assert!(
            outcome.validation.feasible,
            "expected a feasible package, surpluses {:?}",
            outcome
                .validation
                .constraints
                .iter()
                .map(|c| c.surplus)
                .collect::<Vec<_>>()
        );
        // The package respects the count constraint.
        assert!(outcome.x.iter().sum::<f64>() <= 4.0 + 1e-9);
        assert!(outcome.problems_solved >= 1);
        assert!(outcome.iterations >= 1);
    }

    #[test]
    fn csa_solve_without_warm_start_starts_at_p() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let m = 20;
        let matrices = realize_matrices(&inst, m).unwrap();
        let outcome = csa_solve(&inst, None, &matrices, m, 1, None).unwrap();
        // Should produce some package and validate it.
        assert_eq!(outcome.x.len(), 8);
        assert!(outcome.validation.scenarios_used > 0);
    }

    #[test]
    fn feasible_warm_start_returns_quickly() {
        // A package of only low-variance tuples is already feasible, so
        // CSA-Solve should accept it on the first validation.
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let m = 20;
        let matrices = realize_matrices(&inst, m).unwrap();
        let x0 = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0];
        let outcome = csa_solve(&inst, Some(&x0), &matrices, m, 1, None).unwrap();
        assert!(outcome.validation.feasible);
        assert_eq!(outcome.iterations, 1);
        assert_eq!(outcome.problems_solved, 0);
        assert_eq!(outcome.x, x0);
    }

    #[test]
    fn reduced_problem_is_much_smaller_than_saa() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let m = 40;
        let saa = crate::saa::formulate_saa(&inst, m)
            .unwrap()
            .num_coefficients();
        let matrices = realize_matrices(&inst, m).unwrap();
        let x0 = vec![4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let outcome = csa_solve(&inst, Some(&x0), &matrices, m, 1, None).unwrap();
        // CSA with Z = 1 formulates problems of size Θ(N·Z·K), far below the
        // SAA's Θ(N·M·K).
        assert!(outcome.max_coefficients > 0);
        assert!(
            outcome.max_coefficients * 4 < saa,
            "csa {} vs saa {}",
            outcome.max_coefficients,
            saa
        );
    }

    #[test]
    fn solver_statistics_are_accumulated() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let m = 20;
        let matrices = realize_matrices(&inst, m).unwrap();
        let x0 = vec![4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let outcome = csa_solve(&inst, Some(&x0), &matrices, m, 2, None).unwrap();
        assert!(outcome.iterations <= inst.options.max_csa_iterations);
        assert_eq!(outcome.alphas.len(), 1);
        assert!(outcome.validation_scenarios > 0);
    }

    #[test]
    fn oversized_summary_counts_are_clamped_to_m() {
        // Z far above M used to drive the α step past 1 and hand the
        // partitioner more summaries than scenarios; the clamp makes the
        // call equivalent to Z = M.
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let m = 10;
        let matrices = realize_matrices(&inst, m).unwrap();
        let x0 = vec![4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let oversized = csa_solve(&inst, Some(&x0), &matrices, m, 50 * m, None).unwrap();
        let exact = csa_solve(&inst, Some(&x0), &matrices, m, m, None).unwrap();
        assert_eq!(oversized.x, exact.x);
        assert_eq!(oversized.validation.feasible, exact.validation.feasible);
        // Z = 0 is lifted to 1 rather than dividing by zero.
        let zero = csa_solve(&inst, Some(&x0), &matrices, m, 0, None).unwrap();
        assert_eq!(zero.x.len(), 8);
    }

    #[test]
    fn missing_probability_bounds_are_internal_errors() {
        let deterministic = SilpConstraint {
            name: "count".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Le,
            rhs: 4.0,
            kind: ConstraintKind::Deterministic,
        };
        let err = constraint_probability(&deterministic).unwrap_err();
        assert!(matches!(err, crate::SpqError::Internal(_)));
        assert!(err.to_string().contains("count"));
        let probabilistic = SilpConstraint {
            kind: ConstraintKind::Probabilistic { probability: 0.9 },
            ..deterministic
        };
        assert_eq!(constraint_probability(&probabilistic).unwrap(), 0.9);
    }

    #[test]
    fn accepted_packages_carry_full_budget_reports() {
        // The warm start is already feasible, so CSA accepts on the first
        // validation; adaptive early stop must have been confirmed away.
        let rel = relation();
        let mut opts = SpqOptions::for_tests();
        opts.validation_scenarios = 5000;
        let inst = Instance::new(&rel, silp(), opts).unwrap();
        let m = 20;
        let matrices = realize_matrices(&inst, m).unwrap();
        let x0 = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0];
        let outcome = csa_solve(&inst, Some(&x0), &matrices, m, 1, None).unwrap();
        assert!(outcome.validation.feasible);
        assert!(!outcome.validation.early_stopped);
        assert_eq!(outcome.validation.scenarios_used, 5000);
    }
}
