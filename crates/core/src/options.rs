//! Evaluation options shared by the Naïve and SummarySearch algorithms.

use crate::validation::{EarlyStop, ValidationOptions, DEFAULT_INITIAL_STAGE};
use spq_mcdb::ScenarioCache;
use spq_solver::{Deadline, SolverOptions};
use std::sync::Arc;
use std::time::Duration;

/// Tunables of the SketchRefine algorithm (implemented by the `spq-sketch`
/// crate and dispatched through [`crate::Algorithm::SketchRefine`]).
///
/// SketchRefine groups tuples with similar attribute distributions into
/// partitions, solves a *sketch* query over one representative per partition,
/// and then *refines* the chosen partitions one at a time. These knobs
/// control the partitioning granularity and the per-phase budgets.
#[derive(Debug, Clone)]
pub struct SketchOptions {
    /// Maximum number of tuples per partition. `0` picks `⌈√N⌉`
    /// automatically (clamped to `[8, 4096]`), which balances the sketch
    /// size (`N / size` representatives) against the refine size.
    pub max_partition_size: usize,
    /// Partition diameter budget, as a fraction of each normalized feature
    /// dimension's range: a partition never spans more than this fraction in
    /// any feature (per-tuple expectation, standard deviation, or
    /// deterministic attribute). Smaller values yield tighter, more numerous
    /// partitions.
    pub diameter_fraction: f64,
    /// Number of optimization-stream scenarios sampled per tuple to estimate
    /// the distributional features (mean and spread) used for partitioning.
    pub feature_scenarios: usize,
    /// Relations with at most this many candidate tuples are solved directly
    /// with SummarySearch — partitioning overhead isn't worth it below this
    /// size (a single partition would reproduce the full problem anyway).
    pub direct_solve_threshold: usize,
    /// Cap on the optimization-scenario budget of each refine sub-solve,
    /// applied on top of [`SpqOptions::max_scenarios`].
    pub refine_max_scenarios: usize,
    /// Per-MILP solver time cap inside the sketch and refine phases
    /// (tightens [`SolverOptions::time_limit`]). The branch-and-bound solver
    /// returns its best incumbent at the limit, so this trades proof of
    /// optimality for bounded latency; `None` leaves the solver limit alone.
    pub phase_solver_time_limit: Option<Duration>,
}

impl Default for SketchOptions {
    fn default() -> Self {
        SketchOptions {
            max_partition_size: 0,
            diameter_fraction: 0.2,
            feature_scenarios: 24,
            direct_solve_threshold: 64,
            refine_max_scenarios: 200,
            phase_solver_time_limit: Some(Duration::from_secs(10)),
        }
    }
}

impl SketchOptions {
    /// The effective partition-size cap for `n` candidate tuples.
    pub fn effective_partition_size(&self, n: usize) -> usize {
        if self.max_partition_size > 0 {
            self.max_partition_size.max(1)
        } else {
            ((n as f64).sqrt().ceil() as usize).clamp(8, 4096)
        }
    }
}

/// Tunable parameters of SPQ evaluation.
///
/// The defaults follow the paper's experimental setup (Section 6.1) scaled to
/// the from-scratch solver substrate: `M = 100` initial optimization
/// scenarios incremented by `m = 100`, one summary (`Z = 1`) incremented by
/// one, and out-of-sample validation over `validation_scenarios` scenarios.
#[derive(Debug, Clone)]
pub struct SpqOptions {
    /// Base random seed; optimization and validation streams are derived from
    /// it but never overlap.
    pub seed: u64,
    /// Initial number of optimization scenarios (the paper's `M`).
    pub initial_scenarios: usize,
    /// Scenario increment per outer iteration (the paper's `m`).
    pub scenario_increment: usize,
    /// Give up once `M` exceeds this value without a feasible solution
    /// (mirrors the paper's behaviour of declaring infeasibility at
    /// `M = 1000` for TPC-H Q8).
    pub max_scenarios: usize,
    /// Number of out-of-sample validation scenarios (the paper's `M̂`,
    /// 10⁶–10⁷ in the paper; smaller by default here for test speed).
    pub validation_scenarios: usize,
    /// Number of validation-stream scenarios averaged to estimate
    /// expectations `E(t_i.A)` when no closed form exists.
    pub expectation_scenarios: usize,
    /// Scenarios per realized block in the out-of-sample validator (the
    /// streaming granularity of [`crate::validation`]).
    pub validation_block: usize,
    /// Worker threads for the validator's block loop; `0` picks
    /// automatically (honoring `SPQ_VALIDATION_THREADS`). Results are
    /// bit-identical for every value.
    pub validation_threads: usize,
    /// Early-stop policy for validations *inside the search loops* (Naïve's
    /// optimize/validate loop, CSA-Solve's α iterations). A package accepted
    /// as the final answer is always confirmed against the full
    /// [`Self::validation_scenarios`] budget, so this only affects how fast
    /// intermediate candidates are rejected or accepted.
    pub validation_early_stop: EarlyStop,
    /// Initial number of summaries (the paper's `Z`).
    pub initial_summaries: usize,
    /// Summary increment (the paper's `z`).
    pub summary_increment: usize,
    /// User-specified approximation error bound `ε`. `f64::INFINITY` accepts
    /// any feasible solution (feasibility-only termination).
    pub epsilon: f64,
    /// Options handed to the MILP solver for each (reduced) DILP. The
    /// default resolves the solver environment knobs —
    /// `SPQ_SOLVER_BACKEND` (LP backend), `SPQ_SOLVER_PRICING` (simplex
    /// pricing rule), and `SPQ_SOLVER_THREADS` (speculative
    /// branch-and-bound workers; results are bit-identical at any count) —
    /// so services and harnesses inherit them without extra plumbing; an
    /// unrecognized value of any of the three is a hard error.
    pub solver: SolverOptions,
    /// Total wall-clock budget for one query evaluation, relative to
    /// instance preparation. [`crate::Instance::new`] folds it into
    /// [`Self::deadline`], which every evaluation loop **and** the solver's
    /// pivot loops poll — so an expiring budget interrupts a running LP
    /// rather than waiting for it to finish.
    pub time_limit: Option<Duration>,
    /// Absolute deadline and/or cooperative cancellation shared across the
    /// whole evaluation. Defaults to unlimited; services arm it per request
    /// (e.g. `Deadline::none().with_token(token)`) to cancel a solve
    /// mid-flight. [`Self::time_limit`] is merged in at instance
    /// preparation, so callers usually set only one of the two.
    pub deadline: Deadline,
    /// Shared cache of realized optimization-scenario blocks. When set,
    /// [`crate::Instance::optimization_matrix`] memoizes its matrices here,
    /// keyed by relation identity, column, seed and scenario count — so
    /// concurrent (or repeated) evaluations over the same relation never
    /// regenerate the same scenarios. `None` (the default) generates
    /// per-call, which is the right choice for one-shot evaluations.
    pub scenario_cache: Option<Arc<ScenarioCache>>,
    /// Maximum number of CSA-Solve inner iterations per (M, Z) combination.
    pub max_csa_iterations: usize,
    /// Upper bound on any tuple's multiplicity when neither `REPEAT` nor the
    /// constraints imply one (keeps big-M constants finite).
    pub fallback_multiplicity_bound: u32,
    /// Ceiling on the bytes of deterministic column data the relation may
    /// keep resident during this evaluation, analogous to
    /// `SolverOptions::max_solver_bytes`. For disk-backed relations the
    /// chunk-cache budget is clamped down to the cap at instance
    /// preparation; a fully in-memory relation whose columns already exceed
    /// the cap is rejected with a descriptive error (it cannot be made to
    /// fit — rebuild it with `StorageOptions::disk`). `None` (the default)
    /// leaves residency unbounded.
    pub max_relation_bytes: Option<u64>,
    /// SketchRefine-specific knobs (ignored by Naïve and SummarySearch).
    pub sketch: SketchOptions,
}

impl Default for SpqOptions {
    fn default() -> Self {
        SpqOptions {
            seed: 42,
            initial_scenarios: 100,
            scenario_increment: 100,
            max_scenarios: 1000,
            validation_scenarios: 10_000,
            expectation_scenarios: 1000,
            validation_block: crate::validation::DEFAULT_BLOCK_SCENARIOS,
            validation_threads: 0,
            validation_early_stop: EarlyStop::Hoeffding {
                delta: crate::validation::DEFAULT_HOEFFDING_DELTA,
            },
            initial_summaries: 1,
            summary_increment: 1,
            epsilon: f64::INFINITY,
            solver: SolverOptions::default(),
            time_limit: Some(Duration::from_secs(600)),
            deadline: Deadline::none(),
            scenario_cache: None,
            max_csa_iterations: 15,
            fallback_multiplicity_bound: 100,
            max_relation_bytes: None,
            sketch: SketchOptions::default(),
        }
    }
}

impl SpqOptions {
    /// A configuration suitable for unit tests: few scenarios, small budgets.
    pub fn for_tests() -> Self {
        SpqOptions {
            seed: 7,
            initial_scenarios: 20,
            scenario_increment: 20,
            max_scenarios: 100,
            validation_scenarios: 1000,
            expectation_scenarios: 300,
            solver: SolverOptions::with_time_limit_secs(20),
            time_limit: Some(Duration::from_secs(60)),
            ..Default::default()
        }
    }

    /// Set the seed, returning `self` for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the initial scenario count, returning `self` for chaining.
    pub fn with_initial_scenarios(mut self, m: usize) -> Self {
        self.initial_scenarios = m;
        self
    }

    /// Set the initial summary count, returning `self` for chaining.
    pub fn with_initial_summaries(mut self, z: usize) -> Self {
        self.initial_summaries = z;
        self
    }

    /// Set the validation scenario count, returning `self` for chaining.
    pub fn with_validation_scenarios(mut self, m_hat: usize) -> Self {
        self.validation_scenarios = m_hat;
        self
    }

    /// Set the search-loop validation early-stop policy, returning `self`
    /// for chaining.
    pub fn with_validation_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.validation_early_stop = early_stop;
        self
    }

    /// The [`ValidationOptions`] the search loops use for *intermediate*
    /// candidates: the full `M̂` budget with this configuration's adaptive
    /// early-stop policy.
    pub fn search_validation(&self) -> ValidationOptions {
        ValidationOptions {
            m_hat: self.validation_scenarios,
            block_scenarios: self.validation_block,
            threads: self.validation_threads,
            early_stop: self.validation_early_stop,
            initial_stage: DEFAULT_INITIAL_STAGE,
            honor_deadline: true,
        }
    }

    /// The [`ValidationOptions`] for a *final* (reported) package: full
    /// budget, no early stop.
    pub fn full_validation(&self) -> ValidationOptions {
        ValidationOptions {
            early_stop: EarlyStop::Full,
            ..self.search_validation()
        }
    }

    /// The [`ValidationOptions`] for the **final certificate** of a package
    /// reported after the optimization budget ran out: full budget, no
    /// early stop, and exempt from the (already expired) wall-clock
    /// deadline — a fired cancellation token still interrupts it. The paper
    /// validates the returned package regardless of the budget; one bounded
    /// pass beats reporting a conservatively-infeasible unvalidated answer.
    pub fn certificate_validation(&self) -> ValidationOptions {
        self.full_validation().with_honor_deadline(false)
    }

    /// Replace the SketchRefine knobs, returning `self` for chaining.
    pub fn with_sketch(mut self, sketch: SketchOptions) -> Self {
        self.sketch = sketch;
        self
    }

    /// Set the evaluation deadline (absolute instant and/or cancellation
    /// token), returning `self` for chaining.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Attach a shared scenario cache, returning `self` for chaining.
    pub fn with_scenario_cache(mut self, cache: Arc<ScenarioCache>) -> Self {
        self.scenario_cache = Some(cache);
        self
    }

    /// Cap the relation's resident deterministic-column bytes, returning
    /// `self` for chaining.
    pub fn with_max_relation_bytes(mut self, bytes: u64) -> Self {
        self.max_relation_bytes = Some(bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let o = SpqOptions::default();
        assert_eq!(o.initial_scenarios, 100);
        assert_eq!(o.scenario_increment, 100);
        assert_eq!(o.initial_summaries, 1);
        assert_eq!(o.summary_increment, 1);
        assert!(o.epsilon.is_infinite());
    }

    #[test]
    fn builder_methods_chain() {
        let o = SpqOptions::for_tests()
            .with_seed(9)
            .with_initial_scenarios(5)
            .with_initial_summaries(2)
            .with_validation_scenarios(50);
        assert_eq!(o.seed, 9);
        assert_eq!(o.initial_scenarios, 5);
        assert_eq!(o.initial_summaries, 2);
        assert_eq!(o.validation_scenarios, 50);
    }

    #[test]
    fn validation_knobs_flow_into_validation_options() {
        let o = SpqOptions::for_tests().with_validation_scenarios(5000);
        let search = o.search_validation();
        assert_eq!(search.m_hat, 5000);
        assert_eq!(search.block_scenarios, o.validation_block);
        assert!(search.early_stop.enabled(), "search validation is adaptive");
        let full = o.full_validation();
        assert_eq!(full.early_stop, EarlyStop::Full);
        assert_eq!(full.m_hat, 5000);
        let certain = o.with_validation_early_stop(EarlyStop::Certain);
        assert_eq!(certain.search_validation().early_stop, EarlyStop::Certain);
    }

    #[test]
    fn sketch_defaults_and_effective_partition_size() {
        let s = SketchOptions::default();
        assert_eq!(s.max_partition_size, 0);
        assert!(s.diameter_fraction > 0.0 && s.diameter_fraction <= 1.0);
        // Auto sizing: sqrt(N), clamped.
        assert_eq!(s.effective_partition_size(10_000), 100);
        assert_eq!(s.effective_partition_size(4), 8);
        assert_eq!(s.effective_partition_size(100_000_000), 4096);
        // Explicit sizing wins.
        let fixed = SketchOptions {
            max_partition_size: 13,
            ..Default::default()
        };
        assert_eq!(fixed.effective_partition_size(10_000), 13);
        let o = SpqOptions::for_tests().with_sketch(fixed);
        assert_eq!(o.sketch.max_partition_size, 13);
    }
}
