//! Evaluation options shared by the Naïve and SummarySearch algorithms.

use spq_solver::SolverOptions;
use std::time::Duration;

/// Tunable parameters of SPQ evaluation.
///
/// The defaults follow the paper's experimental setup (Section 6.1) scaled to
/// the from-scratch solver substrate: `M = 100` initial optimization
/// scenarios incremented by `m = 100`, one summary (`Z = 1`) incremented by
/// one, and out-of-sample validation over `validation_scenarios` scenarios.
#[derive(Debug, Clone)]
pub struct SpqOptions {
    /// Base random seed; optimization and validation streams are derived from
    /// it but never overlap.
    pub seed: u64,
    /// Initial number of optimization scenarios (the paper's `M`).
    pub initial_scenarios: usize,
    /// Scenario increment per outer iteration (the paper's `m`).
    pub scenario_increment: usize,
    /// Give up once `M` exceeds this value without a feasible solution
    /// (mirrors the paper's behaviour of declaring infeasibility at
    /// `M = 1000` for TPC-H Q8).
    pub max_scenarios: usize,
    /// Number of out-of-sample validation scenarios (the paper's `M̂`,
    /// 10⁶–10⁷ in the paper; smaller by default here for test speed).
    pub validation_scenarios: usize,
    /// Number of validation-stream scenarios averaged to estimate
    /// expectations `E(t_i.A)` when no closed form exists.
    pub expectation_scenarios: usize,
    /// Initial number of summaries (the paper's `Z`).
    pub initial_summaries: usize,
    /// Summary increment (the paper's `z`).
    pub summary_increment: usize,
    /// User-specified approximation error bound `ε`. `f64::INFINITY` accepts
    /// any feasible solution (feasibility-only termination).
    pub epsilon: f64,
    /// Options handed to the MILP solver for each (reduced) DILP.
    pub solver: SolverOptions,
    /// Total wall-clock budget for one query evaluation.
    pub time_limit: Option<Duration>,
    /// Maximum number of CSA-Solve inner iterations per (M, Z) combination.
    pub max_csa_iterations: usize,
    /// Upper bound on any tuple's multiplicity when neither `REPEAT` nor the
    /// constraints imply one (keeps big-M constants finite).
    pub fallback_multiplicity_bound: u32,
}

impl Default for SpqOptions {
    fn default() -> Self {
        SpqOptions {
            seed: 42,
            initial_scenarios: 100,
            scenario_increment: 100,
            max_scenarios: 1000,
            validation_scenarios: 10_000,
            expectation_scenarios: 1000,
            initial_summaries: 1,
            summary_increment: 1,
            epsilon: f64::INFINITY,
            solver: SolverOptions::default(),
            time_limit: Some(Duration::from_secs(600)),
            max_csa_iterations: 15,
            fallback_multiplicity_bound: 100,
        }
    }
}

impl SpqOptions {
    /// A configuration suitable for unit tests: few scenarios, small budgets.
    pub fn for_tests() -> Self {
        SpqOptions {
            seed: 7,
            initial_scenarios: 20,
            scenario_increment: 20,
            max_scenarios: 100,
            validation_scenarios: 1000,
            expectation_scenarios: 300,
            solver: SolverOptions::with_time_limit_secs(20),
            time_limit: Some(Duration::from_secs(60)),
            ..Default::default()
        }
    }

    /// Set the seed, returning `self` for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the initial scenario count, returning `self` for chaining.
    pub fn with_initial_scenarios(mut self, m: usize) -> Self {
        self.initial_scenarios = m;
        self
    }

    /// Set the initial summary count, returning `self` for chaining.
    pub fn with_initial_summaries(mut self, z: usize) -> Self {
        self.initial_summaries = z;
        self
    }

    /// Set the validation scenario count, returning `self` for chaining.
    pub fn with_validation_scenarios(mut self, m_hat: usize) -> Self {
        self.validation_scenarios = m_hat;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let o = SpqOptions::default();
        assert_eq!(o.initial_scenarios, 100);
        assert_eq!(o.scenario_increment, 100);
        assert_eq!(o.initial_summaries, 1);
        assert_eq!(o.summary_increment, 1);
        assert!(o.epsilon.is_infinite());
    }

    #[test]
    fn builder_methods_chain() {
        let o = SpqOptions::for_tests()
            .with_seed(9)
            .with_initial_scenarios(5)
            .with_initial_summaries(2)
            .with_validation_scenarios(50);
        assert_eq!(o.seed, 9);
        assert_eq!(o.initial_scenarios, 5);
        assert_eq!(o.initial_summaries, 2);
        assert_eq!(o.validation_scenarios, 50);
    }
}
