//! Approximation-guarantee bounds (Section 5.4 and Appendix B).
//!
//! SummarySearch certifies that a feasible solution `x⁽q⁾` with objective
//! value `ω⁽q⁾` is `(1 + ε)`-approximate relative to the validation-optimal
//! objective `ω̂` by computing bounds `ω̲ ≤ ω̂ ≤ ω̄` and the quantity `ε⁽q⁾`
//! of Propositions 2–5. Two families of bounds are implemented:
//!
//! * **constraint-agnostic** bounds (Table 1), derived from bounds on the
//!   realized scenario values (`s̲ ≤ ŝ_ij ≤ s̄`, assumption A1) and on the
//!   package size (`l̲ ≤ Σ x̂_i ≤ l̄`, assumption A2);
//! * **constraint-specific** bounds (Table 2 / Appendix B), available when a
//!   probabilistic constraint *supports* or *counteracts* the objective
//!   (Definition 2), e.g. `ω̂ ≥ p·v` for a minimization objective
//!   counteracted by `Pr(Σ ξ x ≥ v) ≥ p` with `v ≥ 0`.

use crate::instance::Instance;
use crate::silp::{ConstraintKind, Direction, SilpConstraint, SilpObjective};
use spq_solver::Sense;

/// How a probabilistic constraint interacts with the objective
/// (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// The constraint pushes in the same direction as the optimization.
    Supporting,
    /// The constraint pushes against the optimization.
    Counteracting,
    /// The constraint involves different random variables (or the objective
    /// is not an expectation of the same inner function).
    Independent,
}

/// Classify the interaction between the objective and one probabilistic
/// constraint.
pub fn classify(objective: &SilpObjective, constraint: &SilpConstraint) -> Interaction {
    if !constraint.kind.is_probabilistic() {
        return Interaction::Independent;
    }
    let (direction, obj_column) = match objective {
        SilpObjective::Linear {
            direction, coeff, ..
        } => (*direction, coeff.column()),
        SilpObjective::Probability { .. } => return Interaction::Independent,
    };
    let constraint_column = constraint.coeff.column();
    if obj_column.is_none() || obj_column != constraint_column {
        return Interaction::Independent;
    }
    // For minimization, a `<=` inner constraint supports the objective and a
    // `>=` inner constraint counteracts it; for maximization the roles swap.
    match (direction, constraint.sense) {
        (Direction::Minimize, Sense::Le) | (Direction::Maximize, Sense::Ge) => {
            Interaction::Supporting
        }
        (Direction::Minimize, Sense::Ge) | (Direction::Maximize, Sense::Le) => {
            Interaction::Counteracting
        }
        (_, Sense::Eq) => Interaction::Independent,
    }
}

/// Bounds `ω̲ ≤ ω̂ ≤ ω̄` on the validation-optimal objective value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmegaBounds {
    /// Lower bound on `ω̂` (may be `-∞`).
    pub lower: f64,
    /// Upper bound on `ω̂` (may be `+∞`).
    pub upper: f64,
}

impl OmegaBounds {
    /// Unbounded on both sides.
    pub fn unbounded() -> Self {
        OmegaBounds {
            lower: f64::NEG_INFINITY,
            upper: f64::INFINITY,
        }
    }
}

/// Compute bounds on the validation-optimal objective value `ω̂`.
pub fn omega_bounds(instance: &Instance<'_>) -> OmegaBounds {
    let silp = &instance.silp;

    // Probability objectives are fractions: trivially bounded by [0, 1].
    if silp.objective.is_probability() {
        return OmegaBounds {
            lower: 0.0,
            upper: 1.0,
        };
    }

    let (l_lo, l_hi) = instance.package_size_bounds();
    let mut bounds = OmegaBounds::unbounded();

    // --- Constraint-agnostic bounds (Table 1). -----------------------------
    let value_bounds = match &silp.objective {
        SilpObjective::Linear { coeff, .. } => match coeff {
            crate::silp::CoeffSource::Stochastic(_) => instance.objective_value_bounds(),
            other => {
                // Deterministic coefficients: bound by their min/max.
                instance.coefficients(other).ok().and_then(|c| {
                    let lo = c.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = c.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    if lo.is_finite() && hi.is_finite() {
                        Some((lo, hi))
                    } else {
                        None
                    }
                })
            }
        },
        SilpObjective::Probability { .. } => None,
    };
    if let Some((s_lo, s_hi)) = value_bounds {
        if l_hi.is_finite() {
            let lower = if s_lo >= 0.0 {
                s_lo * l_lo
            } else {
                s_lo * l_hi
            };
            let upper = if s_hi >= 0.0 {
                s_hi * l_hi
            } else {
                s_hi * l_lo
            };
            bounds.lower = bounds.lower.max(lower);
            bounds.upper = bounds.upper.min(upper);
        } else if s_lo >= 0.0 {
            bounds.lower = bounds.lower.max(s_lo * l_lo);
        }
    }

    // --- Constraint-specific bounds (Table 2 / Appendix B). ----------------
    for c in &silp.constraints {
        if !matches!(c.kind, ConstraintKind::Probabilistic { .. }) {
            continue;
        }
        let p = c.probability().unwrap_or(0.0);
        match classify(&silp.objective, c) {
            Interaction::Counteracting => {
                // For minimization with Pr(Σ ξ x ≥ v) ≥ p and v ≥ 0:
                // ω̂ ≥ p·v (Section 5.4). The symmetric bound applies to
                // maximization with Pr(Σ ξ x ≤ v) ≥ p and v ≤ 0: ω̂ ≤ p·v.
                match silp.objective.direction() {
                    Direction::Minimize if c.sense == Sense::Ge && c.rhs >= 0.0 => {
                        bounds.lower = bounds.lower.max(p * c.rhs);
                    }
                    Direction::Maximize if c.sense == Sense::Le && c.rhs <= 0.0 => {
                        bounds.upper = bounds.upper.min(p * c.rhs);
                    }
                    _ => {}
                }
            }
            Interaction::Supporting => {
                // For minimization with a supporting constraint
                // Pr(Σ ξ x ≤ v) ≥ p, v ≥ 0, values bounded above by s̄ ≥ 0
                // and package size by l̄: ω̂ ≤ v + (1 - p)·s̄·l̄ (Appendix B).
                // Symmetrically for maximization with Pr(Σ ξ x ≥ v) ≥ p,
                // v ≤ 0 and values bounded below by s̲ ≤ 0:
                // ω̂ ≥ v + (1 - p)·s̲·l̄.
                if let Some((s_lo, s_hi)) = instance.objective_value_bounds() {
                    if l_hi.is_finite() {
                        match silp.objective.direction() {
                            Direction::Minimize
                                if c.sense == Sense::Le && c.rhs >= 0.0 && s_hi >= 0.0 =>
                            {
                                bounds.upper = bounds.upper.min(c.rhs + (1.0 - p) * s_hi * l_hi);
                            }
                            Direction::Maximize
                                if c.sense == Sense::Ge && c.rhs <= 0.0 && s_lo <= 0.0 =>
                            {
                                bounds.lower = bounds.lower.max(c.rhs + (1.0 - p) * s_lo * l_hi);
                            }
                            _ => {}
                        }
                    }
                }
            }
            Interaction::Independent => {}
        }
    }

    bounds
}

/// Compute the certificate quantity `ε⁽q⁾` of Propositions 2–5 for a solution
/// with objective value `omega_q`. Returns `+∞` when no applicable bound is
/// available (the certificate then cannot be issued).
pub fn epsilon_upper_bound(direction: Direction, omega_q: f64, bounds: &OmegaBounds) -> f64 {
    match direction {
        Direction::Minimize => {
            if bounds.lower.is_finite() && bounds.lower > 0.0 && omega_q >= 0.0 {
                // Proposition 2: ε⁽q⁾ = ω⁽q⁾ / ω̲ − 1.
                omega_q / bounds.lower - 1.0
            } else if bounds.lower.is_finite() && bounds.lower < 0.0 && omega_q < 0.0 {
                // Proposition 3: ε⁽q⁾ = ω̲ / ω⁽q⁾ − 1.
                bounds.lower / omega_q - 1.0
            } else {
                f64::INFINITY
            }
        }
        Direction::Maximize => {
            if bounds.upper.is_finite() && bounds.upper > 0.0 && omega_q > 0.0 {
                // Proposition 4: ε⁽q⁾ = ω̄ / ω⁽q⁾ − 1.
                bounds.upper / omega_q - 1.0
            } else if bounds.upper.is_finite() && bounds.upper < 0.0 && omega_q <= 0.0 {
                // Proposition 5: ε⁽q⁾ = ω⁽q⁾ / ω̄ − 1.
                omega_q / bounds.upper - 1.0
            } else {
                f64::INFINITY
            }
        }
    }
}

/// The smallest ε for which the termination check can possibly succeed
/// (`ε_min`, Section 5.4): obtained by substituting the best possible
/// objective value (the opposite bound) into the ε⁽q⁾ formula.
pub fn epsilon_min(direction: Direction, bounds: &OmegaBounds) -> f64 {
    match direction {
        Direction::Minimize => {
            if bounds.upper.is_finite() {
                epsilon_upper_bound(direction, bounds.upper, bounds)
            } else {
                f64::INFINITY
            }
        }
        Direction::Maximize => {
            if bounds.lower.is_finite() {
                epsilon_upper_bound(direction, bounds.lower, bounds)
            } else {
                f64::INFINITY
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{CoeffSource, Silp};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;

    fn constraint(sense: Sense, rhs: f64, p: f64, column: &str) -> SilpConstraint {
        SilpConstraint {
            name: "c".into(),
            coeff: CoeffSource::Stochastic(column.into()),
            sense,
            rhs,
            kind: ConstraintKind::Probabilistic { probability: p },
        }
    }

    fn objective(direction: Direction, column: &str) -> SilpObjective {
        SilpObjective::Linear {
            direction,
            coeff: CoeffSource::Stochastic(column.into()),
            expectation: true,
        }
    }

    #[test]
    fn classification_follows_definition_2() {
        // Minimization supported by <= and counteracted by >=.
        let obj = objective(Direction::Minimize, "flux");
        assert_eq!(
            classify(&obj, &constraint(Sense::Le, 40.0, 0.9, "flux")),
            Interaction::Supporting
        );
        assert_eq!(
            classify(&obj, &constraint(Sense::Ge, 40.0, 0.9, "flux")),
            Interaction::Counteracting
        );
        // Different attribute => independent.
        assert_eq!(
            classify(&obj, &constraint(Sense::Ge, 40.0, 0.9, "other")),
            Interaction::Independent
        );
        // Maximization flips the roles.
        let obj = objective(Direction::Maximize, "gain");
        assert_eq!(
            classify(&obj, &constraint(Sense::Ge, -10.0, 0.95, "gain")),
            Interaction::Supporting
        );
        assert_eq!(
            classify(&obj, &constraint(Sense::Le, -10.0, 0.95, "gain")),
            Interaction::Counteracting
        );
        // Probability objectives are treated as independent.
        let pobj = SilpObjective::Probability {
            direction: Direction::Maximize,
            attribute: "gain".into(),
            sense: Sense::Ge,
            threshold: 0.0,
        };
        assert_eq!(
            classify(&pobj, &constraint(Sense::Ge, 0.0, 0.9, "gain")),
            Interaction::Independent
        );
    }

    #[test]
    fn counteracting_constraint_gives_pv_lower_bound() {
        // Galaxy-style query: minimize expected flux subject to
        // Pr(SUM(flux) >= 40) >= 0.9 -> ω̂ >= 36.
        let rel = RelationBuilder::new("g")
            .stochastic(
                "flux",
                NormalNoise::around(vec![10.0, 12.0, 9.0, 11.0], 2.0),
            )
            .build()
            .unwrap();
        let silp = Silp {
            relation: "g".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "count".into(),
                    coeff: CoeffSource::Constant(1.0),
                    sense: Sense::Le,
                    rhs: 10.0,
                    kind: ConstraintKind::Deterministic,
                },
                constraint(Sense::Ge, 40.0, 0.9, "flux"),
            ],
            objective: objective(Direction::Minimize, "flux"),
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let b = omega_bounds(&inst);
        assert!(b.lower >= 36.0 - 1e-9, "lower bound {}", b.lower);
        assert!(b.upper.is_finite());
        // ε for a solution with value 45 is at most 45/36 - 1 = 0.25.
        let eps = epsilon_upper_bound(Direction::Minimize, 45.0, &b);
        assert!(eps <= 0.25 + 1e-9);
        assert!(eps >= 0.0);
        // ε_min is achievable.
        assert!(epsilon_min(Direction::Minimize, &b) >= 0.0);
    }

    #[test]
    fn probability_objective_bounds_are_unit_interval() {
        let rel = RelationBuilder::new("g")
            .stochastic("rev", NormalNoise::around(vec![1.0, 2.0], 1.0))
            .build()
            .unwrap();
        let silp = Silp {
            relation: "g".into(),
            tuples: vec![0, 1],
            repeat_bound: None,
            constraints: vec![],
            objective: SilpObjective::Probability {
                direction: Direction::Maximize,
                attribute: "rev".into(),
                sense: Sense::Ge,
                threshold: 1.0,
            },
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let b = omega_bounds(&inst);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 1.0);
        // A solution achieving probability 0.8 has ε ≤ 1/0.8 - 1 = 0.25.
        let eps = epsilon_upper_bound(Direction::Maximize, 0.8, &b);
        assert!((eps - 0.25).abs() < 1e-9);
    }

    #[test]
    fn epsilon_formulas_per_proposition() {
        // Prop 2: minimization, positive values.
        let b = OmegaBounds {
            lower: 10.0,
            upper: 20.0,
        };
        assert!((epsilon_upper_bound(Direction::Minimize, 12.0, &b) - 0.2).abs() < 1e-12);
        assert!((epsilon_min(Direction::Minimize, &b) - 1.0).abs() < 1e-12);
        // Prop 3: minimization, negative values.
        let b = OmegaBounds {
            lower: -20.0,
            upper: -5.0,
        };
        assert!((epsilon_upper_bound(Direction::Minimize, -16.0, &b) - 0.25).abs() < 1e-12);
        // Prop 4: maximization, positive values.
        let b = OmegaBounds {
            lower: 5.0,
            upper: 20.0,
        };
        assert!((epsilon_upper_bound(Direction::Maximize, 16.0, &b) - 0.25).abs() < 1e-12);
        assert!(epsilon_min(Direction::Maximize, &b) > 0.0);
        // Prop 5: maximization, negative values.
        let b = OmegaBounds {
            lower: -20.0,
            upper: -4.0,
        };
        assert!((epsilon_upper_bound(Direction::Maximize, -5.0, &b) - 0.25).abs() < 1e-12);
        // No applicable bound -> infinity.
        let b = OmegaBounds::unbounded();
        assert!(epsilon_upper_bound(Direction::Minimize, 1.0, &b).is_infinite());
        assert!(epsilon_upper_bound(Direction::Maximize, 1.0, &b).is_infinite());
        assert!(epsilon_min(Direction::Minimize, &b).is_infinite());
    }

    #[test]
    fn table1_bounds_respect_value_signs() {
        // Maximization of gains that can be negative: the supporting
        // constraint bound and Table 1 both apply.
        let rel = RelationBuilder::new("p")
            .stochastic("gain", NormalNoise::around(vec![0.5, 1.0, -0.5], 1.0))
            .build()
            .unwrap();
        let silp = Silp {
            relation: "p".into(),
            tuples: vec![0, 1, 2],
            repeat_bound: None,
            constraints: vec![
                SilpConstraint {
                    name: "count".into(),
                    coeff: CoeffSource::Constant(1.0),
                    sense: Sense::Le,
                    rhs: 5.0,
                    kind: ConstraintKind::Deterministic,
                },
                constraint(Sense::Ge, -10.0, 0.95, "gain"),
            ],
            objective: objective(Direction::Maximize, "gain"),
        };
        let inst = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let b = omega_bounds(&inst);
        assert!(b.upper.is_finite());
        assert!(b.lower <= b.upper);
        // The supporting constraint (>= -10, v < 0) provides a finite lower
        // bound as well.
        assert!(b.lower.is_finite());
    }
}
