//! Translation of bound sPaQL queries into SILPs.

use crate::error::SpqError;
use crate::silp::{CoeffSource, ConstraintKind, Direction, Silp, SilpConstraint, SilpObjective};
use crate::Result;
use spq_mcdb::Relation;
use spq_solver::Sense;
use spq_spaql::{AggExpr, BoundQuery, CompareOp, ConstraintExpr, ObjectiveExpr, ObjectiveSense};

fn sense_from(op: CompareOp) -> Result<Sense> {
    Ok(match op {
        CompareOp::Le | CompareOp::Lt => Sense::Le,
        CompareOp::Ge | CompareOp::Gt => Sense::Ge,
        CompareOp::Eq => Sense::Eq,
        CompareOp::Ne => {
            return Err(SpqError::Unsupported(
                "`<>` comparisons are not supported in package constraints".into(),
            ))
        }
    })
}

fn coeff_for(relation: &Relation, agg: &AggExpr) -> CoeffSource {
    match agg {
        AggExpr::Count => CoeffSource::Constant(1.0),
        AggExpr::Sum { attribute } => {
            if relation.is_stochastic(attribute) {
                CoeffSource::Stochastic(attribute.clone())
            } else {
                CoeffSource::Deterministic(attribute.clone())
            }
        }
    }
}

/// Translate a bound query into a SILP over the candidate tuples.
///
/// Probabilistic constraints with a `<= p` probability bound are rewritten to
/// the canonical `>= 1 - p` form by flipping the inner inequality
/// (Section 2.3). `BETWEEN` constraints become a pair of inequalities.
pub fn translate(bound: &BoundQuery, relation: &Relation) -> Result<Silp> {
    let query = &bound.query;
    let mut constraints = Vec::new();

    for (idx, c) in query.constraints.iter().enumerate() {
        match c {
            ConstraintExpr::Deterministic { agg, op, value } => {
                constraints.push(SilpConstraint {
                    name: format!("c{idx}_det"),
                    coeff: coeff_for(relation, agg),
                    sense: sense_from(*op)?,
                    rhs: *value,
                    kind: ConstraintKind::Deterministic,
                });
            }
            ConstraintExpr::Between { agg, low, high } => {
                let coeff = coeff_for(relation, agg);
                constraints.push(SilpConstraint {
                    name: format!("c{idx}_lo"),
                    coeff: coeff.clone(),
                    sense: Sense::Ge,
                    rhs: *low,
                    kind: ConstraintKind::Deterministic,
                });
                constraints.push(SilpConstraint {
                    name: format!("c{idx}_hi"),
                    coeff,
                    sense: Sense::Le,
                    rhs: *high,
                    kind: ConstraintKind::Deterministic,
                });
            }
            ConstraintExpr::Expected { agg, op, value } => {
                constraints.push(SilpConstraint {
                    name: format!("c{idx}_exp"),
                    coeff: coeff_for(relation, agg),
                    sense: sense_from(*op)?,
                    rhs: *value,
                    kind: ConstraintKind::Expectation,
                });
            }
            ConstraintExpr::Probabilistic {
                agg,
                op,
                value,
                prob_op,
                probability,
            } => {
                let mut sense = sense_from(*op)?;
                if sense == Sense::Eq {
                    return Err(SpqError::Unsupported(
                        "probabilistic constraints require an inequality inner constraint".into(),
                    ));
                }
                let mut p = *probability;
                // Pr(inner) <= p  <=>  Pr(flipped inner) >= 1 - p.
                if matches!(prob_op, CompareOp::Le | CompareOp::Lt) {
                    sense = sense.flip();
                    p = 1.0 - p;
                }
                constraints.push(SilpConstraint {
                    name: format!("c{idx}_prob"),
                    coeff: coeff_for(relation, agg),
                    sense,
                    rhs: *value,
                    kind: ConstraintKind::Probabilistic { probability: p },
                });
            }
        }
    }

    let objective = match &query.objective {
        None => SilpObjective::Linear {
            // With no objective, any feasible package will do; minimize the
            // package size so the solver prefers small packages.
            direction: Direction::Minimize,
            coeff: CoeffSource::Constant(1.0),
            expectation: false,
        },
        Some(obj) => {
            let direction = match obj.sense {
                ObjectiveSense::Maximize => Direction::Maximize,
                ObjectiveSense::Minimize => Direction::Minimize,
            };
            match &obj.expr {
                ObjectiveExpr::ExpectedSum { attribute } => SilpObjective::Linear {
                    direction,
                    coeff: if relation.is_stochastic(attribute) {
                        CoeffSource::Stochastic(attribute.clone())
                    } else {
                        CoeffSource::Deterministic(attribute.clone())
                    },
                    expectation: true,
                },
                ObjectiveExpr::Sum { attribute } => SilpObjective::Linear {
                    direction,
                    coeff: CoeffSource::Deterministic(attribute.clone()),
                    expectation: false,
                },
                ObjectiveExpr::Count => SilpObjective::Linear {
                    direction,
                    coeff: CoeffSource::Constant(1.0),
                    expectation: false,
                },
                ObjectiveExpr::ProbabilityOf {
                    attribute,
                    op,
                    value,
                } => SilpObjective::Probability {
                    direction,
                    attribute: attribute.clone(),
                    sense: sense_from(*op)?,
                    threshold: *value,
                },
            }
        }
    };

    Ok(Silp {
        relation: query.table.clone(),
        tuples: bound.candidate_tuples.clone(),
        repeat_bound: query.repeat.map(|l| l + 1),
        constraints,
        objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;
    use spq_spaql::{bind, parse};

    fn relation() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![10.0, 20.0, 30.0])
            .deterministic_text("kind", vec!["a", "b", "a"])
            .stochastic("gain", NormalNoise::around(vec![1.0, 2.0, 3.0], 1.0))
            .stochastic("loss", NormalNoise::around(vec![0.5, 0.5, 0.5], 1.0))
            .build()
            .unwrap()
    }

    fn silp_for(q: &str) -> Silp {
        let rel = relation();
        let parsed = parse(q).unwrap();
        let bound = bind(&parsed, &rel).unwrap();
        translate(&bound, &rel).unwrap()
    }

    #[test]
    fn figure_1_style_query() {
        let s = silp_for(
            "SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) <= 1000 AND \
             SUM(gain) >= -10 WITH PROBABILITY >= 0.95 MAXIMIZE EXPECTED SUM(gain)",
        );
        assert_eq!(s.tuples, vec![0, 1, 2]);
        assert_eq!(s.constraints.len(), 2);
        assert_eq!(s.constraints[0].kind, ConstraintKind::Deterministic);
        assert_eq!(
            s.constraints[0].coeff,
            CoeffSource::Deterministic("price".into())
        );
        assert_eq!(
            s.constraints[1].kind,
            ConstraintKind::Probabilistic { probability: 0.95 }
        );
        assert_eq!(s.constraints[1].sense, Sense::Ge);
        match &s.objective {
            SilpObjective::Linear {
                direction,
                coeff,
                expectation,
            } => {
                assert_eq!(*direction, Direction::Maximize);
                assert_eq!(*coeff, CoeffSource::Stochastic("gain".into()));
                assert!(expectation);
            }
            other => panic!("unexpected objective {other:?}"),
        }
    }

    #[test]
    fn between_becomes_two_constraints() {
        let s = silp_for(
            "SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) BETWEEN 2 AND 5 MINIMIZE COUNT(*)",
        );
        assert_eq!(s.constraints.len(), 2);
        assert_eq!(s.constraints[0].sense, Sense::Ge);
        assert_eq!(s.constraints[0].rhs, 2.0);
        assert_eq!(s.constraints[1].sense, Sense::Le);
        assert_eq!(s.constraints[1].rhs, 5.0);
        assert_eq!(s.constraints[0].coeff, CoeffSource::Constant(1.0));
    }

    #[test]
    fn le_probability_bound_is_rewritten() {
        let s = silp_for(
            "SELECT PACKAGE(*) FROM t SUCH THAT SUM(gain) >= 0 WITH PROBABILITY <= 0.1 \
             MINIMIZE COUNT(*)",
        );
        let c = &s.constraints[0];
        // Pr(sum >= 0) <= 0.1 becomes Pr(sum <= 0) >= 0.9.
        assert_eq!(c.sense, Sense::Le);
        assert_eq!(c.kind, ConstraintKind::Probabilistic { probability: 0.9 });
    }

    #[test]
    fn repeat_bound_and_where_filtering() {
        let rel = relation();
        let parsed = parse(
            "SELECT PACKAGE(*) FROM t REPEAT 2 WHERE kind = 'a' SUCH THAT COUNT(*) <= 3 \
             MAXIMIZE EXPECTED SUM(gain)",
        )
        .unwrap();
        let bound = bind(&parsed, &rel).unwrap();
        let s = translate(&bound, &rel).unwrap();
        assert_eq!(s.repeat_bound, Some(3));
        assert_eq!(s.tuples, vec![0, 2]);
    }

    #[test]
    fn probability_objective() {
        let s = silp_for(
            "SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) <= 5 \
             MAXIMIZE PROBABILITY OF SUM(gain) >= 3",
        );
        match &s.objective {
            SilpObjective::Probability {
                direction,
                attribute,
                sense,
                threshold,
            } => {
                assert_eq!(*direction, Direction::Maximize);
                assert_eq!(attribute, "gain");
                assert_eq!(*sense, Sense::Ge);
                assert_eq!(*threshold, 3.0);
            }
            other => panic!("unexpected objective {other:?}"),
        }
    }

    #[test]
    fn missing_objective_defaults_to_minimal_package() {
        let s = silp_for("SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(gain) >= 2");
        match &s.objective {
            SilpObjective::Linear {
                direction, coeff, ..
            } => {
                assert_eq!(*direction, Direction::Minimize);
                assert_eq!(*coeff, CoeffSource::Constant(1.0));
            }
            other => panic!("unexpected objective {other:?}"),
        }
        assert_eq!(s.constraints[0].kind, ConstraintKind::Expectation);
    }

    #[test]
    fn expected_constraint_on_deterministic_column() {
        let s = silp_for(
            "SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(price) <= 100 MINIMIZE COUNT(*)",
        );
        assert_eq!(s.constraints[0].kind, ConstraintKind::Expectation);
        assert_eq!(
            s.constraints[0].coeff,
            CoeffSource::Deterministic("price".into())
        );
    }
}
