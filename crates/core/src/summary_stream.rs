//! Memory-efficient summary generation (Section 5.5).
//!
//! Building an α-summary needs (1) the scenario scores of the previous
//! solution, to pick `G_z(α)`, and (2) a tuple-wise min/max over the chosen
//! scenarios. Keeping all `M` scenarios of all `N` tuples in memory costs
//! `Θ(M·N·K)`; the paper describes two `Θ(N·Z·K)`-space alternatives that
//! regenerate realizations on demand from the seeded VG functions:
//!
//! * **tuple-wise summarization** — generate all `M` realizations of one
//!   tuple at a time; scoring only touches the tuples of the previous package
//!   (`Θ(P·M)` work), while the aggregation touches every tuple (`Θ(N·M)`).
//! * **scenario-wise summarization** — generate one scenario for all tuples
//!   at a time; scoring costs `Θ(N·M)` but aggregation only regenerates the
//!   `⌈α·M⌉` chosen scenarios (`Θ(α·N·M)`).
//!
//! Both produce bit-identical summaries (and agree with the in-memory path of
//! [`crate::summary`]) because realizations are pure functions of
//! `(seed, column, tuple, scenario)`.

use crate::instance::Instance;
use crate::summary::SummarySpec;
use crate::Result;
use spq_solver::Sense;

/// Which generation order to use for memory-efficient summarization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryStrategy {
    /// One tuple at a time (unique stream per tuple).
    TupleWise,
    /// One scenario at a time (unique stream per scenario).
    ScenarioWise,
}

/// Scenario scores of the previous solution over the scenarios in `partition`
/// (used to order `G_z(α)` greedily).
fn scenario_scores(
    instance: &Instance<'_>,
    column: &str,
    partition: &[usize],
    prev: Option<&[f64]>,
    strategy: SummaryStrategy,
) -> Result<Vec<(f64, usize)>> {
    let Some(prev) = prev else {
        return Ok(partition.iter().map(|&j| (0.0, j)).collect());
    };
    let support: Vec<usize> = prev
        .iter()
        .enumerate()
        .filter(|(_, &x)| x > 0.0)
        .map(|(i, _)| i)
        .collect();
    let mut scores = vec![0.0f64; partition.len()];
    match strategy {
        SummaryStrategy::TupleWise => {
            // Θ(P·M): realize all partition scenarios for each support tuple.
            for &i in &support {
                for (pos, &j) in partition.iter().enumerate() {
                    let column_values = instance.optimization_scenario_cell(column, i, j)?;
                    scores[pos] += column_values * prev[i];
                }
            }
        }
        SummaryStrategy::ScenarioWise => {
            // Θ(N·M): realize whole scenarios and pick the support positions.
            for (pos, &j) in partition.iter().enumerate() {
                let row = instance.optimization_scenario(column, j)?;
                scores[pos] = support.iter().map(|&i| row[i] * prev[i]).sum();
            }
        }
    }
    Ok(scores.into_iter().zip(partition.iter().copied()).collect())
}

/// Build the α-summary of one partition without materializing the full
/// `M × N` scenario matrix.
pub fn summarize_partition_streaming(
    instance: &Instance<'_>,
    column: &str,
    partition: &[usize],
    spec: &SummarySpec<'_>,
    strategy: SummaryStrategy,
) -> Result<Vec<f64>> {
    let n = instance.num_vars();
    if partition.is_empty() || n == 0 {
        return Ok(vec![0.0; n]);
    }
    // --- G_z(α) selection by scenario score. -------------------------------
    let mut scored = scenario_scores(
        instance,
        column,
        partition,
        spec.previous_solution,
        strategy,
    )?;
    if spec.previous_solution.is_some() {
        if spec.sense == Sense::Ge {
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        } else {
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }
    }
    let count = ((spec.alpha * partition.len() as f64).ceil() as usize).clamp(1, partition.len());
    let chosen: Vec<usize> = scored.into_iter().take(count).map(|(_, j)| j).collect();

    // --- Tuple-wise aggregation over the chosen scenarios. -----------------
    let conservative_is_min = spec.sense == Sense::Ge;
    let mut summary = vec![
        if conservative_is_min {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        n
    ];
    let mut anti = vec![
        if conservative_is_min {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        n
    ];
    match strategy {
        SummaryStrategy::ScenarioWise => {
            for &j in &chosen {
                let row = instance.optimization_scenario(column, j)?;
                for i in 0..n {
                    if conservative_is_min {
                        summary[i] = summary[i].min(row[i]);
                        anti[i] = anti[i].max(row[i]);
                    } else {
                        summary[i] = summary[i].max(row[i]);
                        anti[i] = anti[i].min(row[i]);
                    }
                }
            }
        }
        SummaryStrategy::TupleWise => {
            for i in 0..n {
                for &j in &chosen {
                    let v = instance.optimization_scenario_cell(column, i, j)?;
                    if conservative_is_min {
                        summary[i] = summary[i].min(v);
                        anti[i] = anti[i].max(v);
                    } else {
                        summary[i] = summary[i].max(v);
                        anti[i] = anti[i].min(v);
                    }
                }
            }
        }
    }
    if spec.accelerate {
        if let Some(prev) = spec.previous_solution {
            for i in 0..n {
                if prev.get(i).copied().unwrap_or(0.0) > 0.0 {
                    summary[i] = anti[i];
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SpqOptions;
    use crate::silp::{
        CoeffSource, ConstraintKind, Direction, Silp, SilpConstraint, SilpObjective,
    };
    use crate::summary::{partition_scenarios, summarize_partition};
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::RelationBuilder;

    fn instance_fixture() -> (spq_mcdb::Relation, Silp) {
        let rel = RelationBuilder::new("t")
            .deterministic_f64("price", vec![10.0; 6])
            .stochastic(
                "gain",
                NormalNoise::around(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 1.5),
            )
            .build()
            .unwrap();
        let silp = Silp {
            relation: "t".into(),
            tuples: (0..6).collect(),
            repeat_bound: None,
            constraints: vec![SilpConstraint {
                name: "risk".into(),
                coeff: CoeffSource::Stochastic("gain".into()),
                sense: spq_solver::Sense::Ge,
                rhs: 0.0,
                kind: ConstraintKind::Probabilistic { probability: 0.9 },
            }],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        };
        (rel, silp)
    }

    #[test]
    fn streaming_strategies_agree_with_the_in_memory_path() {
        let (rel, silp) = instance_fixture();
        let instance = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let m = 12;
        let matrix = instance.optimization_matrix("gain", m).unwrap();
        let partitions = partition_scenarios(m, 3);
        let prev = vec![0.0, 1.0, 0.0, 2.0, 0.0, 0.0];
        for sense in [Sense::Ge, Sense::Le] {
            for accelerate in [false, true] {
                let spec = SummarySpec {
                    alpha: 0.6,
                    sense,
                    previous_solution: Some(&prev),
                    accelerate,
                };
                for partition in &partitions {
                    let reference = summarize_partition(&matrix, partition, &spec);
                    for strategy in [SummaryStrategy::TupleWise, SummaryStrategy::ScenarioWise] {
                        let streamed = summarize_partition_streaming(
                            &instance, "gain", partition, &spec, strategy,
                        )
                        .unwrap();
                        assert_eq!(
                            streamed, reference,
                            "{sense:?} {strategy:?} accel={accelerate}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_without_previous_solution_uses_partition_order() {
        let (rel, silp) = instance_fixture();
        let instance = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let m = 8;
        let matrix = instance.optimization_matrix("gain", m).unwrap();
        let partition: Vec<usize> = (0..m).collect();
        let spec = SummarySpec {
            alpha: 0.5,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let reference = summarize_partition(&matrix, &partition, &spec);
        let streamed = summarize_partition_streaming(
            &instance,
            "gain",
            &partition,
            &spec,
            SummaryStrategy::ScenarioWise,
        )
        .unwrap();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn empty_partition_yields_zero_summary() {
        let (rel, silp) = instance_fixture();
        let instance = Instance::new(&rel, silp, SpqOptions::for_tests()).unwrap();
        let spec = SummarySpec {
            alpha: 0.5,
            sense: Sense::Ge,
            previous_solution: None,
            accelerate: false,
        };
        let s = summarize_partition_streaming(
            &instance,
            "gain",
            &[],
            &spec,
            SummaryStrategy::TupleWise,
        )
        .unwrap();
        assert_eq!(s, vec![0.0; 6]);
    }
}
