//! Integration tests of the SketchRefine pipeline: end-to-end behavior on
//! structured relations, refinement quality, and the property that
//! SketchRefine tracks SummarySearch's objective on clustered instances
//! while every returned package validates at the query's probability
//! threshold.

use proptest::prelude::*;
use spq_core::silp::{CoeffSource, ConstraintKind, Direction, Silp, SilpConstraint, SilpObjective};
use spq_core::{validate, Algorithm, Instance, SketchOptions, SpqEngine, SpqOptions};
use spq_mcdb::vg::NormalNoise;
use spq_mcdb::{Relation, RelationBuilder};
use spq_sketch::evaluate_sketch_refine;
use spq_solver::Sense;

/// A relation of `means.len()` tuples, all priced `price`, with Gaussian
/// gains.
fn gains_relation(means: Vec<f64>, sds: Vec<f64>, price: f64) -> Relation {
    let n = means.len();
    RelationBuilder::new("t")
        .deterministic_f64("price", vec![price; n])
        .stochastic("gain", NormalNoise::around(means, sds))
        .build()
        .unwrap()
}

/// `SUM(price) <= budget AND SUM(gain) >= v WITH PROBABILITY >= p
///  MAXIMIZE EXPECTED SUM(gain)` over all tuples.
fn gains_silp(n: usize, budget: f64, v: f64, p: f64) -> Silp {
    Silp {
        relation: "t".into(),
        tuples: (0..n).collect(),
        repeat_bound: None,
        constraints: vec![
            SilpConstraint {
                name: "budget".into(),
                coeff: CoeffSource::Deterministic("price".into()),
                sense: Sense::Le,
                rhs: budget,
                kind: ConstraintKind::Deterministic,
            },
            SilpConstraint {
                name: "risk".into(),
                coeff: CoeffSource::Stochastic("gain".into()),
                sense: Sense::Ge,
                rhs: v,
                kind: ConstraintKind::Probabilistic { probability: p },
            },
        ],
        objective: SilpObjective::Linear {
            direction: Direction::Maximize,
            coeff: CoeffSource::Stochastic("gain".into()),
            expectation: true,
        },
    }
}

fn sketch_options(max_partition_size: usize) -> SpqOptions {
    SpqOptions::for_tests().with_sketch(SketchOptions {
        max_partition_size,
        diameter_fraction: 0.25,
        direct_solve_threshold: 1,
        refine_max_scenarios: 100,
        ..Default::default()
    })
}

#[test]
fn refine_upgrades_the_medoid_to_the_best_partition_member() {
    // Two clusters; in the good cluster the best member (mean 6.0) is *not*
    // the medoid (mean 5.2), so only the refine phase can reach it.
    let rel = gains_relation(vec![1.0, 1.1, 1.2, 5.0, 5.2, 6.0], vec![0.5; 6], 100.0);
    let inst = Instance::new(&rel, gains_silp(6, 200.0, 0.0, 0.9), sketch_options(3)).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(result.feasible, "stats: {:?}", result.stats);
    let package = result.package.unwrap();
    assert!(package.is_feasible());
    // Budget 200 / price 100: two copies of the mean-6.0 tuple (index 5).
    assert_eq!(package.multiplicities, vec![(5, 2)]);
    assert!(
        package.objective_estimate > 11.0,
        "objective {}",
        package.objective_estimate
    );
    // The refine phase actually ran.
    assert!(result.stats.outer_iterations >= 1);
}

#[test]
fn representative_capacity_scales_past_the_fallback_bound() {
    // COUNT(*) >= 150 with no per-tuple repeat limit: each tuple may take up
    // to `fallback_multiplicity_bound` (100) copies, so the query is
    // feasible — but the single partition's lone representative must be
    // allowed 70 × 100 copies, beyond the 100-copy fallback. A regression
    // here clamps the representative to 100 < 150, makes the sketch MILP
    // infeasible, and SketchRefine wrongly reports failure. Zero-variance
    // gains make every tuple's feature vector identical, forcing exactly one
    // partition (and therefore exactly one representative).
    let n = 70;
    let rel = gains_relation(vec![2.0; n], vec![0.0; n], 1.0);
    let silp = Silp {
        relation: "t".into(),
        tuples: (0..n).collect(),
        repeat_bound: None,
        constraints: vec![SilpConstraint {
            name: "at_least".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Ge,
            rhs: 150.0,
            kind: ConstraintKind::Deterministic,
        }],
        objective: SilpObjective::Linear {
            direction: Direction::Maximize,
            coeff: CoeffSource::Stochastic("gain".into()),
            expectation: true,
        },
    };
    let inst = Instance::new(&rel, silp, sketch_options(70)).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(result.feasible, "stats: {:?}", result.stats);
    assert!(result.package.unwrap().size() >= 150);
}

#[test]
fn refined_packages_respect_the_repeat_bound() {
    // REPEAT 1 (at most 2 copies per tuple) with COUNT(*) >= 20: the sketch
    // representative legitimately carries 20 copies, and the refine phase
    // must redistribute them across real tuples at <= 2 copies each; the
    // returned package must never violate the query's repeat limit while
    // being reported feasible.
    let n = 70;
    let rel = gains_relation(vec![2.0; n], vec![0.0; n], 1.0);
    let mut silp = gains_silp(n, 1000.0, -100.0, 0.9);
    silp.repeat_bound = Some(2);
    silp.constraints.push(SilpConstraint {
        name: "at_least".into(),
        coeff: CoeffSource::Constant(1.0),
        sense: Sense::Ge,
        rhs: 20.0,
        kind: ConstraintKind::Deterministic,
    });
    let inst = Instance::new(&rel, silp, sketch_options(70)).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(result.feasible, "stats: {:?}", result.stats);
    let package = result.package.unwrap();
    assert!(package.size() >= 20);
    assert!(
        package.multiplicities.iter().all(|&(_, m)| m <= 2),
        "repeat bound violated: {:?}",
        package.multiplicities
    );
}

#[test]
fn repeat_refinement_is_accepted_despite_the_inflated_sketch_objective() {
    // Heterogeneous gains + REPEAT: the sketch packs 20 copies onto the best
    // member (objective 20 × max gain), while any legal refinement spreads
    // over lesser tuples and scores strictly lower. The inflated sketch
    // incumbent must not be used as the acceptance bar, or every valid
    // refinement is rejected and the query is wrongly reported infeasible.
    let n = 60;
    let means: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.05).collect();
    let rel = gains_relation(means, vec![0.0; n], 1.0);
    let mut silp = gains_silp(n, 1000.0, -100.0, 0.9);
    silp.repeat_bound = Some(2);
    silp.constraints.push(SilpConstraint {
        name: "at_least".into(),
        coeff: CoeffSource::Constant(1.0),
        sense: Sense::Ge,
        rhs: 20.0,
        kind: ConstraintKind::Deterministic,
    });
    let inst = Instance::new(&rel, silp, sketch_options(60)).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(result.feasible, "stats: {:?}", result.stats);
    let package = result.package.unwrap();
    assert!(package.size() >= 20);
    assert!(package.multiplicities.iter().all(|&(_, m)| m <= 2));
    // The refinement favors the top-gain tuples: 2 copies each of the ten
    // best (means 3.45 .. 3.95) total ≈ 74.
    assert!(
        package.objective_estimate > 70.0,
        "objective {}",
        package.objective_estimate
    );
}

#[test]
fn sketch_refine_handles_infeasible_queries_gracefully() {
    let rel = gains_relation(vec![1.0; 12], vec![0.3; 12], 100.0);
    let mut opts = sketch_options(4);
    opts.initial_scenarios = 10;
    opts.scenario_increment = 10;
    opts.max_scenarios = 20;
    opts.validation_scenarios = 300;
    // Total gain >= 500 with 4 tuples of mean 1 is impossible.
    let inst = Instance::new(&rel, gains_silp(12, 400.0, 500.0, 0.95), opts).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(!result.feasible);
}

#[test]
fn small_instances_fall_back_to_summary_search() {
    let rel = gains_relation(vec![2.0, 3.0, 4.0], vec![0.2; 3], 100.0);
    let mut opts = SpqOptions::for_tests();
    opts.sketch.direct_solve_threshold = 64; // n = 3 is far below
    let inst = Instance::new(&rel, gains_silp(3, 300.0, 0.0, 0.9), opts).unwrap();
    let result = evaluate_sketch_refine(&inst).unwrap();
    assert!(result.feasible);
    assert!(result.package.unwrap().size() > 0);
}

#[test]
fn engine_dispatches_sketch_refine_after_install() {
    spq_sketch::install();
    let means: Vec<f64> = (0..120).map(|i| 1.0 + (i % 6) as f64).collect();
    let sds: Vec<f64> = (0..120).map(|i| 0.2 + 0.05 * (i % 6) as f64).collect();
    let rel = RelationBuilder::new("stocks")
        .deterministic_f64("price", vec![100.0; 120])
        .stochastic("Gain", NormalNoise::around(means, sds))
        .build()
        .unwrap();
    let engine = SpqEngine::new(sketch_options(16).with_initial_scenarios(15));
    let result = engine
        .evaluate(
            &rel,
            "SELECT PACKAGE(*) FROM stocks SUCH THAT \
             SUM(price) <= 400 AND \
             SUM(Gain) >= -2 WITH PROBABILITY >= 0.9 \
             MAXIMIZE EXPECTED SUM(Gain)",
            Algorithm::SketchRefine,
        )
        .unwrap();
    assert!(result.feasible, "stats: {:?}", result.stats);
    let package = result.package.unwrap();
    assert!(package.size() > 0 && package.size() <= 4);
    // The best tuples have mean 6: a 4-pick package should get close to 24.
    assert!(
        package.objective_estimate > 20.0,
        "objective {}",
        package.objective_estimate
    );
}

/// The configured closeness bound of the SketchRefine-vs-SummarySearch
/// property: on clustered instances the sketch's representative error is the
/// intra-cluster jitter, so 10% is generous.
const EPSILON: f64 = 0.10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// On small feasible clustered instances, SketchRefine's validated
    /// objective is within `EPSILON` of SummarySearch's, and the returned
    /// package re-validates at the query's probability threshold.
    #[test]
    fn sketch_refine_tracks_summary_search_within_epsilon(
        seed in 0u64..1000,
        clusters in 3usize..6,
        copies in 3usize..5,
        jitter in 0.0f64..0.01,
    ) {
        let n = clusters * copies;
        let mut means = Vec::with_capacity(n);
        let mut sds = Vec::with_capacity(n);
        for c in 0..clusters {
            let mu = 1.0 + 1.5 * c as f64;
            let sd = 0.3 + 0.1 * c as f64;
            for k in 0..copies {
                // Deterministic intra-cluster jitter of at most ~1%.
                let wiggle = 1.0 + jitter * ((seed + k as u64) % 3) as f64 / 2.0;
                means.push(mu * wiggle);
                sds.push(sd * wiggle);
            }
        }
        let rel = gains_relation(means, sds, 100.0);
        let silp = gains_silp(n, 400.0, -5.0, 0.9);
        let p = 0.9;

        let mut opts = sketch_options(copies);
        opts.seed = seed;
        opts.validation_scenarios = 800;
        opts.sketch.diameter_fraction = 0.2;

        let ss_inst = Instance::new(&rel, silp.clone(), opts.clone()).unwrap();
        let ss = spq_core::summary_search::evaluate_summary_search(&ss_inst).unwrap();
        prop_assert!(ss.feasible, "SummarySearch failed: {:?}", ss.stats);
        let ss_obj = ss.package.as_ref().unwrap().objective_estimate;

        let sr_inst = Instance::new(&rel, silp.clone(), opts.clone()).unwrap();
        let sr = evaluate_sketch_refine(&sr_inst).unwrap();
        prop_assert!(sr.feasible, "SketchRefine failed: {:?}", sr.stats);
        let package = sr.package.unwrap();
        let sr_obj = package.objective_estimate;

        // Maximization: SketchRefine must reach at least (1 - ε) of
        // SummarySearch's objective.
        prop_assert!(
            sr_obj >= ss_obj * (1.0 - EPSILON) - 1e-9,
            "SketchRefine {sr_obj} vs SummarySearch {ss_obj}"
        );

        // The returned package passes out-of-sample validation at the
        // query's probability threshold.
        let check_inst = Instance::new(&rel, silp, opts).unwrap();
        let mut x = vec![0.0f64; n];
        for &(tuple, mult) in &package.multiplicities {
            x[tuple] = f64::from(mult);
        }
        let report = validate(&check_inst, &x, 2000).unwrap();
        prop_assert!(report.feasible, "package failed re-validation: {report:?}");
        prop_assert!(report.constraints[0].satisfied_fraction >= p - 0.02);
    }
}
