//! Storage-tier conformance for the full SketchRefine pipeline: the package
//! a query returns must not depend on where the relation's deterministic
//! columns live (memory vs chunked disk files), on the chunk size, or on the
//! validator's worker count. The hierarchical partitioner reads block
//! summaries and pages straddled blocks, but its output — and therefore the
//! final refined package — is defined purely by tuple values.

use spq_core::{Algorithm, SketchOptions, SpqEngine, SpqOptions};
use spq_mcdb::StorageOptions;
use spq_workloads::{build_workload, build_workload_with, WorkloadKind};

fn engine(validation_threads: usize) -> SpqEngine {
    let mut options = SpqOptions::for_tests()
        .with_initial_scenarios(15)
        .with_validation_scenarios(400)
        .with_sketch(SketchOptions {
            max_partition_size: 40,
            ..SketchOptions::default()
        });
    options.validation_threads = validation_threads;
    SpqEngine::new(options)
}

#[test]
fn sketch_refine_packages_are_identical_across_tiers_chunk_sizes_and_threads() {
    spq_sketch::install();
    let scale = 600;
    let seed = 13;
    let memory = build_workload(WorkloadKind::Portfolio, scale, seed);
    let query = memory.query(1).to_string();

    // Reference: in-memory relation, serial validation.
    let reference = engine(1)
        .evaluate(&memory.relation, &query, Algorithm::SketchRefine)
        .unwrap();
    assert!(reference.feasible, "stats: {:?}", reference.stats);
    let reference = reference.package.unwrap();

    let dir = std::env::temp_dir().join(format!("spq-sketch-conform-{}", std::process::id()));
    for chunk_rows in [1_000usize, 65_536] {
        let disk = build_workload_with(
            WorkloadKind::Portfolio,
            scale,
            seed,
            StorageOptions::disk(dir.join(format!("c{chunk_rows}"))).chunk_rows(chunk_rows),
        )
        .expect("disk-backed workload");
        assert_eq!(disk.relation.storage_kind(), "disk");
        assert_eq!(disk.relation.fingerprint(), memory.relation.fingerprint());
        for threads in [1usize, 8] {
            let result = engine(threads)
                .evaluate(&disk.relation, &query, Algorithm::SketchRefine)
                .unwrap();
            assert!(result.feasible, "chunk_rows={chunk_rows} threads={threads}");
            let package = result.package.unwrap();
            assert_eq!(
                package.multiplicities, reference.multiplicities,
                "package differs at chunk_rows={chunk_rows} threads={threads}"
            );
            assert_eq!(
                package.objective_estimate, reference.objective_estimate,
                "objective differs at chunk_rows={chunk_rows} threads={threads}"
            );
            assert_eq!(
                package.validation.objective_estimate, reference.validation.objective_estimate,
                "validation differs at chunk_rows={chunk_rows} threads={threads}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}
