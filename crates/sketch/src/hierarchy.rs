//! Hierarchical, summary-first partitioning (DistPartition-style).
//!
//! The flat partitioner in [`crate::partition`] sorts the *entire* candidate
//! set along one dimension at every recursion level, so a million-tuple
//! relation pays `O(N log N)` feature-matrix traffic per level — every split
//! touches every row. This module replaces that sweep for large instances
//! with the hierarchical strategy of *Stochastic SketchRefine* (Haque et
//! al., 2024; `DistPartition`): the candidate space is carved top-down using
//! **block-level summaries** first, and individual rows are only paged in
//! for the blocks a split actually straddles.
//!
//! Candidates are grouped into fixed-size *blocks* of [`BLOCK_ROWS`]
//! positions. One streaming pass records each block's per-dimension
//! `[min, max]` envelope; afterwards the recursion operates on spans:
//!
//! * a **whole-block span** is described entirely by its resident envelope —
//!   routing it to one side of a split plane never touches its rows;
//! * only blocks whose envelope *straddles* the plane are refined: their
//!   rows are scanned once and re-emitted as two part-spans with exact
//!   envelopes.
//!
//! Splits choose the widest dimension of the node's exact envelope and cut
//! at the envelope midpoint. Because envelopes are exact (block summaries
//! are computed from the rows, part-spans carry the bounds observed when
//! they were formed), both sides of a cut are provably non-empty and the
//! recursion always terminates. Leaves satisfy the same contract as the
//! flat partitioner — normalized per-dimension spread at most `diameter` and
//! at most `max_size` members — and elect the same medoid representative,
//! computed blockwise so no step ever needs the full `N × d` feature matrix
//! at once.
//!
//! [`BLOCK_ROWS`] is a **fixed constant**, deliberately independent of the
//! storage tier's chunk size: the partitioning (and therefore the final
//! SketchRefine package) is bit-identical whether the relation lives in
//! memory or on disk and whatever chunk size the disk tier uses. The storage
//! conformance suite pins exactly this.
//!
//! Determinism: splits depend only on feature values and positions (ties
//! break by position), so the same inputs always yield the same partitions
//! regardless of thread count.

use crate::features::candidate_dimensions;
use crate::partition::Partitioning;
use spq_core::{Instance, Result};
use spq_obs::metrics::{Counter, Named};

/// Rows per summary block. Fixed so partitioning never depends on the
/// relation's storage chunk size (see the module docs).
pub const BLOCK_ROWS: usize = 4096;

// How many summary blocks the recursion actually refined (paged row data
// for) versus routed wholesale by their envelopes; exported for the
// Prometheus snapshot so scaling runs can show the summary-first win.
static BLOCKS_REFINED: Named<Counter> = Named::new("spq_sketch_blocks_refined", Counter::new());
static BLOCKS_ROUTED: Named<Counter> = Named::new("spq_sketch_blocks_routed", Counter::new());

/// Normalized candidate features stored column-major with per-block
/// `[min, max]` envelopes. Built once per evaluation; the envelopes are what
/// the hierarchical recursion consults before it ever reads a row.
pub struct BlockFeatures {
    n: usize,
    d: usize,
    block_rows: usize,
    /// One normalized `[0, 1]` vector per feature dimension (column-major).
    dims: Vec<Vec<f64>>,
    /// `lo[block * d + dim]` / `hi[block * d + dim]`.
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BlockFeatures {
    /// Build from pre-normalized column-major dimensions with an explicit
    /// block size (exposed for tests; production uses [`BLOCK_ROWS`]).
    pub fn from_dims(dims: Vec<Vec<f64>>, block_rows: usize) -> Self {
        let d = dims.len();
        let n = dims.first().map(Vec::len).unwrap_or(0);
        debug_assert!(dims.iter().all(|v| v.len() == n));
        let block_rows = block_rows.max(1);
        let blocks = n.div_ceil(block_rows);
        let mut lo = vec![f64::INFINITY; blocks * d];
        let mut hi = vec![f64::NEG_INFINITY; blocks * d];
        for b in 0..blocks {
            let start = b * block_rows;
            let end = (start + block_rows).min(n);
            for (k, dim) in dims.iter().enumerate() {
                let mut bl = f64::INFINITY;
                let mut bh = f64::NEG_INFINITY;
                for &v in &dim[start..end] {
                    bl = bl.min(v);
                    bh = bh.max(v);
                }
                lo[b * d + k] = bl;
                hi[b * d + k] = bh;
            }
        }
        BlockFeatures {
            n,
            d,
            block_rows,
            dims,
            lo,
            hi,
        }
    }

    /// Build the blocked feature index for an instance's candidates.
    pub fn from_instance(instance: &Instance<'_>) -> Result<Self> {
        Ok(Self::from_dims(candidate_dimensions(instance)?, BLOCK_ROWS))
    }

    /// Number of candidate positions.
    pub fn num_rows(&self) -> usize {
        self.n
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.d
    }

    fn num_blocks(&self) -> usize {
        self.n.div_ceil(self.block_rows)
    }

    fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let start = b * self.block_rows;
        start..(start + self.block_rows).min(self.n)
    }

    #[inline]
    fn value(&self, dim: usize, row: usize) -> f64 {
        self.dims[dim][row]
    }

    fn block_lo(&self, b: usize, dim: usize) -> f64 {
        self.lo[b * self.d + dim]
    }

    fn block_hi(&self, b: usize, dim: usize) -> f64 {
        self.hi[b * self.d + dim]
    }
}

/// A contiguous-or-explicit slice of one summary block inside a node.
enum Span {
    /// Every row of the block; bounds come from the resident envelope.
    Whole(usize),
    /// An explicit subset of one block, with the exact per-dimension bounds
    /// observed when the subset was formed.
    Part {
        rows: Vec<u32>,
        lo: Vec<f64>,
        hi: Vec<f64>,
    },
}

impl Span {
    fn len(&self, f: &BlockFeatures) -> usize {
        match self {
            Span::Whole(b) => f.block_range(*b).len(),
            Span::Part { rows, .. } => rows.len(),
        }
    }

    fn bounds(&self, f: &BlockFeatures, dim: usize) -> (f64, f64) {
        match self {
            Span::Whole(b) => (f.block_lo(*b, dim), f.block_hi(*b, dim)),
            Span::Part { lo, hi, .. } => (lo[dim], hi[dim]),
        }
    }

    fn for_each_row(&self, f: &BlockFeatures, mut visit: impl FnMut(usize)) {
        match self {
            Span::Whole(b) => f.block_range(*b).for_each(&mut visit),
            Span::Part { rows, .. } => rows.iter().for_each(|&r| visit(r as usize)),
        }
    }
}

/// Exact per-dimension envelope of a set of spans.
fn node_bounds(f: &BlockFeatures, spans: &[Span]) -> (Vec<f64>, Vec<f64>) {
    let mut lo = vec![f64::INFINITY; f.d];
    let mut hi = vec![f64::NEG_INFINITY; f.d];
    for span in spans {
        for dim in 0..f.d {
            let (sl, sh) = span.bounds(f, dim);
            lo[dim] = lo[dim].min(sl);
            hi[dim] = hi[dim].max(sh);
        }
    }
    (lo, hi)
}

/// Build a part-span from rows of one block, recording exact bounds.
fn part_span(f: &BlockFeatures, rows: Vec<u32>) -> Span {
    let mut lo = vec![f64::INFINITY; f.d];
    let mut hi = vec![f64::NEG_INFINITY; f.d];
    for &r in &rows {
        for dim in 0..f.d {
            let v = f.value(dim, r as usize);
            lo[dim] = lo[dim].min(v);
            hi[dim] = hi[dim].max(v);
        }
    }
    Span::Part { rows, lo, hi }
}

/// Recursively split `spans` until every leaf satisfies both budgets, then
/// emit sorted member lists into `leaves`.
fn split(
    f: &BlockFeatures,
    spans: Vec<Span>,
    max_size: usize,
    diameter: f64,
    leaves: &mut Vec<Vec<usize>>,
) {
    let size: usize = spans.iter().map(|s| s.len(f)).sum();
    if size == 0 {
        return;
    }
    let (lo, hi) = node_bounds(f, &spans);
    let (dim, spread) = (0..f.d)
        .map(|k| (k, hi[k] - lo[k]))
        .fold(
            (0usize, 0.0f64),
            |acc, cur| {
                if cur.1 > acc.1 {
                    cur
                } else {
                    acc
                }
            },
        );

    if spread > diameter && size > 1 {
        // Mid-plane cut of the exact envelope. Both sides are non-empty:
        // the row attaining `lo[dim]` lands left (lo <= plane) and the row
        // attaining `hi[dim]` lands right (hi > plane, strictly).
        let plane = 0.5 * (lo[dim] + hi[dim]);
        let mut left: Vec<Span> = Vec::new();
        let mut right: Vec<Span> = Vec::new();
        for span in spans {
            let (sl, sh) = span.bounds(f, dim);
            if sh <= plane {
                // Routed by summary alone — rows never touched.
                if matches!(span, Span::Whole(_)) {
                    BLOCKS_ROUTED.inc();
                }
                left.push(span);
            } else if sl > plane {
                if matches!(span, Span::Whole(_)) {
                    BLOCKS_ROUTED.inc();
                }
                right.push(span);
            } else {
                // The envelope straddles the plane: page this span's rows in
                // and refine it into two exact part-spans.
                if matches!(span, Span::Whole(_)) {
                    BLOCKS_REFINED.inc();
                }
                let mut lrows: Vec<u32> = Vec::new();
                let mut rrows: Vec<u32> = Vec::new();
                span.for_each_row(f, |row| {
                    if f.value(dim, row) <= plane {
                        lrows.push(row as u32);
                    } else {
                        rrows.push(row as u32);
                    }
                });
                if !lrows.is_empty() {
                    left.push(part_span(f, lrows));
                }
                if !rrows.is_empty() {
                    right.push(part_span(f, rrows));
                }
            }
        }
        split(f, left, max_size, diameter, leaves);
        split(f, right, max_size, diameter, leaves);
    } else if size > max_size {
        // Diameter satisfied but too many tuples: order along the widest
        // dimension (ties by position — determinism) and chop into
        // size-budget chunks. This is the only place a node materializes
        // per-row values, and it is bounded by the node, not the relation.
        let mut members: Vec<(f64, usize)> = Vec::with_capacity(size);
        for span in &spans {
            span.for_each_row(f, |row| members.push((f.value(dim, row), row)));
        }
        members.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        for chunk in members.chunks(max_size) {
            leaves.push(chunk.iter().map(|&(_, row)| row).collect());
        }
    } else {
        let mut members: Vec<usize> = Vec::with_capacity(size);
        for span in &spans {
            span.for_each_row(f, |row| members.push(row));
        }
        members.sort_unstable();
        leaves.push(members);
    }
}

/// Elect the medoid of `members` (closest to the centroid, ties to the
/// lowest position), reading the column-major dimensions one at a time so
/// the full feature matrix is never assembled.
fn medoid(f: &BlockFeatures, members: &[usize]) -> usize {
    let inv = 1.0 / members.len() as f64;
    let mut dist = vec![0.0f64; members.len()];
    for dim in 0..f.d {
        let centroid: f64 = members.iter().map(|&i| f.value(dim, i)).sum::<f64>() * inv;
        for (slot, &i) in dist.iter_mut().zip(members) {
            let delta = f.value(dim, i) - centroid;
            *slot += delta * delta;
        }
    }
    let mut best = 0usize;
    for (idx, &d) in dist.iter().enumerate() {
        if d < dist[best] {
            best = idx;
        }
    }
    members[best]
}

/// Partition candidates hierarchically: same contract as
/// [`crate::partition::partition_candidates`] — groups of at most
/// `max_size` whose normalized per-dimension spread never exceeds
/// `diameter` (clamped to `(0, 1]`), each with a medoid representative —
/// but driven by block summaries so only straddled blocks are paged in.
pub fn partition_hierarchical(f: &BlockFeatures, max_size: usize, diameter: f64) -> Partitioning {
    let n = f.num_rows();
    let max_size = max_size.max(1);
    let diameter = if diameter <= 0.0 {
        1.0
    } else {
        diameter.min(1.0)
    };

    let spans: Vec<Span> = (0..f.num_blocks()).map(Span::Whole).collect();
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    split(f, spans, max_size, diameter, &mut partitions);

    let mut assignment = vec![0usize; n];
    let mut representatives = Vec::with_capacity(partitions.len());
    for (pid, members) in partitions.iter().enumerate() {
        for &i in members {
            assignment[i] = pid;
        }
        representatives.push(medoid(f, members));
    }

    Partitioning {
        partitions,
        representatives,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims_of(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let d = rows.first().map(Vec::len).unwrap_or(0);
        (0..d)
            .map(|k| rows.iter().map(|r| r[k]).collect())
            .collect()
    }

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                vec![
                    i as f64 / (n - 1) as f64,
                    ((i * 7) % n) as f64 / (n - 1) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn covers_all_positions_disjointly_and_respects_budgets() {
        let rows = grid(500);
        for block_rows in [3, 64, 4096] {
            let f = BlockFeatures::from_dims(dims_of(&rows), block_rows);
            let p = partition_hierarchical(&f, 40, 0.25);
            let mut all: Vec<usize> = p.partitions.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..500).collect::<Vec<_>>());
            for (pid, members) in p.partitions.iter().enumerate() {
                assert!(members.len() <= 40);
                assert!(p.partitions[pid].contains(&p.representatives[pid]));
                for &i in members {
                    assert_eq!(p.assignment[i], pid);
                }
                for dim in [0, 1] {
                    let vals: Vec<f64> = members.iter().map(|&i| rows[i][dim]).collect();
                    let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                        - vals.iter().cloned().fold(f64::INFINITY, f64::min);
                    assert!(spread <= 0.25 + 1e-12, "spread {spread} in dim {dim}");
                }
            }
        }
    }

    #[test]
    fn block_size_does_not_change_the_partitioning() {
        // The summary granularity is an implementation detail: cuts happen
        // at envelope midpoints, which are identical whatever the blocking,
        // so the final leaves must match exactly. This is the property that
        // lets BLOCK_ROWS stay independent of the storage chunk size.
        let rows = grid(257);
        let reference = {
            let f = BlockFeatures::from_dims(dims_of(&rows), 1);
            partition_hierarchical(&f, 16, 0.2)
        };
        for block_rows in [2, 5, 32, 4096] {
            let f = BlockFeatures::from_dims(dims_of(&rows), block_rows);
            let p = partition_hierarchical(&f, 16, 0.2);
            assert_eq!(
                p.partitions, reference.partitions,
                "block_rows {block_rows}"
            );
            assert_eq!(p.representatives, reference.representatives);
        }
    }

    #[test]
    fn whole_blocks_route_without_refinement() {
        // Two well-separated clusters, each filling whole blocks: the first
        // cut routes every block by its envelope alone.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..64 {
            rows.push(vec![0.05 + (i % 8) as f64 * 0.001]);
        }
        for i in 0..64 {
            rows.push(vec![0.95 + (i % 8) as f64 * 0.001]);
        }
        let before = (BLOCKS_ROUTED.get(), BLOCKS_REFINED.get());
        let f = BlockFeatures::from_dims(dims_of(&rows), 16);
        let p = partition_hierarchical(&f, 64, 0.2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.partitions[0], (0..64).collect::<Vec<_>>());
        assert_eq!(p.partitions[1], (64..128).collect::<Vec<_>>());
        assert!(BLOCKS_ROUTED.get() >= before.0 + 8, "all 8 blocks routed");
        assert_eq!(BLOCKS_REFINED.get(), before.1, "no block refined");
    }

    #[test]
    fn identical_tuples_chop_into_size_chunks() {
        let rows = vec![vec![0.4, 0.4]; 100];
        let f = BlockFeatures::from_dims(dims_of(&rows), 7);
        let p = partition_hierarchical(&f, 30, 0.1);
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.partitions.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![30, 30, 30, 10]
        );
    }

    #[test]
    fn empty_input_yields_no_partitions() {
        let f = BlockFeatures::from_dims(vec![], 4096);
        let p = partition_hierarchical(&f, 8, 0.2);
        assert!(p.is_empty());
        assert!(p.assignment.is_empty());
    }

    #[test]
    fn matches_flat_partitioner_semantics_on_medoids() {
        // Same three-point line as the flat partitioner's medoid test: the
        // central member is elected.
        let rows = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 1.0]];
        let f = BlockFeatures::from_dims(dims_of(&rows), 4096);
        let p = partition_hierarchical(&f, 3, 1.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.representatives[0], 1);
    }
}
