//! Distributional feature extraction for partitioning.
//!
//! SketchRefine groups tuples whose attribute *distributions* are similar, so
//! that one representative per group is a faithful stand-in during the sketch
//! phase. Each candidate tuple is embedded into a small feature vector built
//! from the columns the query actually touches:
//!
//! * a **deterministic** column contributes its value,
//! * a **stochastic** column contributes its expectation estimate (the
//!   engine's precomputed `E(t_i.A)`) *and* an empirical standard deviation
//!   over a handful of optimization-stream scenarios — two tuples only land
//!   in the same partition when both their location and their spread agree.
//!
//! Every dimension is min-max normalized to `[0, 1]` over the candidate set,
//! so the partitioner's diameter budget is scale-free.

use spq_core::silp::{CoeffSource, SilpObjective};
use spq_core::{Instance, Result};

/// Normalized per-candidate feature vectors, row-major.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    rows: usize,
    dims: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Build from row-major data (normalized or not; the partitioner assumes
    /// `[0, 1]` per dimension).
    pub fn new(rows: usize, dims: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), rows * dims);
        FeatureMatrix { rows, dims, data }
    }

    /// Number of candidate tuples.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of feature dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Feature vector of candidate `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }
}

/// The columns a SILP reads, deduplicated in declaration order.
pub(crate) fn referenced_columns(instance: &Instance<'_>) -> (Vec<String>, Vec<String>) {
    let silp = &instance.silp;
    let mut det: Vec<String> = Vec::new();
    let mut stoch: Vec<String> = Vec::new();
    let mut record = |coeff: &CoeffSource| match coeff {
        CoeffSource::Constant(_) => {}
        CoeffSource::Deterministic(c) => {
            if !det.contains(c) {
                det.push(c.clone());
            }
        }
        CoeffSource::Stochastic(c) => {
            if !stoch.contains(c) {
                stoch.push(c.clone());
            }
        }
    };
    for c in &silp.constraints {
        record(&c.coeff);
    }
    match &silp.objective {
        SilpObjective::Linear { coeff, .. } => record(coeff),
        SilpObjective::Probability { attribute, .. } => {
            record(&CoeffSource::Stochastic(attribute.clone()))
        }
    }
    (det, stoch)
}

/// Min-max normalize one raw dimension in place; constant dimensions
/// collapse to 0 (they cannot separate tuples anyway).
pub(crate) fn normalize(dim: &mut [f64]) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in dim.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    if !range.is_finite() || range < 1e-12 {
        dim.fill(0.0);
    } else {
        for v in dim.iter_mut() {
            *v = (*v - lo) / range;
        }
    }
}

/// The normalized feature dimensions of an instance's candidates,
/// column-major: one `[0, 1]`-normalized vector per feature dimension. This
/// is the shared substrate of both the dense [`FeatureMatrix`] and the
/// blockwise [`crate::hierarchy`] partitioner (which never transposes it
/// into a row-major matrix).
pub(crate) fn candidate_dimensions(instance: &Instance<'_>) -> Result<Vec<Vec<f64>>> {
    let n = instance.num_vars();
    let (det, stoch) = referenced_columns(instance);
    let mut dims: Vec<Vec<f64>> = Vec::new();

    for col in &det {
        dims.push(instance.deterministic(col)?.to_vec());
    }

    let m = instance.options.sketch.feature_scenarios.max(1);
    for col in &stoch {
        dims.push(instance.expectations(col)?.to_vec());
        // Routed through the instance so the moment prefilter applies: a
        // provably scenario-invariant column contributes its exact (value,
        // 0) moments without any scenario draws, and noisy columns go
        // through the columnar block engine.
        let moments = instance.tuple_moments(col, m)?;
        dims.push(moments.into_iter().map(|(_, sd)| sd).collect());
    }

    // A query referencing only constants (COUNT(*)) still needs *some*
    // embedding; fall back to a single zero dimension (every tuple is then
    // interchangeable, which is exactly right).
    if dims.is_empty() {
        dims.push(vec![0.0; n]);
    }

    for dim in &mut dims {
        normalize(dim);
    }
    Ok(dims)
}

/// Extract the normalized feature matrix of an instance's candidate tuples.
pub fn candidate_features(instance: &Instance<'_>) -> Result<FeatureMatrix> {
    let n = instance.num_vars();
    let dims = candidate_dimensions(instance)?;
    let d = dims.len();
    let mut data = vec![0.0f64; n * d];
    for (k, dim) in dims.iter().enumerate() {
        for (i, &v) in dim.iter().enumerate() {
            data[i * d + k] = v;
        }
    }
    Ok(FeatureMatrix::new(n, d, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_core::silp::{ConstraintKind, Direction, Silp, SilpConstraint};
    use spq_core::SpqOptions;
    use spq_mcdb::vg::NormalNoise;
    use spq_mcdb::{Relation, RelationBuilder};
    use spq_solver::Sense;

    fn relation() -> Relation {
        RelationBuilder::new("t")
            .deterministic_f64("price", vec![10.0, 20.0, 30.0, 40.0])
            .stochastic(
                "gain",
                NormalNoise::around(vec![1.0, 1.0, 5.0, 5.0], vec![0.1, 0.1, 2.0, 2.0]),
            )
            .build()
            .unwrap()
    }

    fn silp() -> Silp {
        Silp {
            relation: "t".into(),
            tuples: vec![0, 1, 2, 3],
            repeat_bound: None,
            constraints: vec![SilpConstraint {
                name: "budget".into(),
                coeff: CoeffSource::Deterministic("price".into()),
                sense: Sense::Le,
                rhs: 60.0,
                kind: ConstraintKind::Deterministic,
            }],
            objective: SilpObjective::Linear {
                direction: Direction::Maximize,
                coeff: CoeffSource::Stochastic("gain".into()),
                expectation: true,
            },
        }
    }

    #[test]
    fn features_cover_price_mean_and_spread() {
        let rel = relation();
        let inst = Instance::new(&rel, silp(), SpqOptions::for_tests()).unwrap();
        let f = candidate_features(&inst).unwrap();
        assert_eq!(f.num_rows(), 4);
        // price + (gain mean, gain sd)
        assert_eq!(f.dims(), 3);
        for i in 0..4 {
            for &v in f.row(i) {
                assert!((0.0..=1.0).contains(&v), "row {i}: {v}");
            }
        }
        // Price is normalized linearly: 10 -> 0, 40 -> 1.
        assert_eq!(f.row(0)[0], 0.0);
        assert_eq!(f.row(3)[0], 1.0);
        // Tuples 0/1 share mean and sd; tuples 2/3 likewise — and the two
        // groups are far apart in both stochastic dimensions.
        assert_eq!(f.row(0)[1], f.row(1)[1]);
        assert!((f.row(0)[2] - f.row(1)[2]).abs() < 0.15);
        assert!((f.row(0)[1] - f.row(2)[1]).abs() > 0.9);
        assert!((f.row(0)[2] - f.row(2)[2]).abs() > 0.5);
    }

    #[test]
    fn constant_only_queries_get_a_degenerate_embedding() {
        let rel = relation();
        let mut s = silp();
        s.constraints = vec![SilpConstraint {
            name: "count".into(),
            coeff: CoeffSource::Constant(1.0),
            sense: Sense::Le,
            rhs: 2.0,
            kind: ConstraintKind::Deterministic,
        }];
        s.objective = SilpObjective::Linear {
            direction: Direction::Maximize,
            coeff: CoeffSource::Constant(1.0),
            expectation: false,
        };
        let inst = Instance::new(&rel, s, SpqOptions::for_tests()).unwrap();
        let f = candidate_features(&inst).unwrap();
        assert_eq!(f.dims(), 1);
        assert!(f.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalize_handles_constant_dimensions() {
        let mut dim = vec![3.0, 3.0, 3.0];
        normalize(&mut dim);
        assert_eq!(dim, vec![0.0, 0.0, 0.0]);
        let mut dim = vec![1.0, 3.0];
        normalize(&mut dim);
        assert_eq!(dim, vec![0.0, 1.0]);
    }
}
