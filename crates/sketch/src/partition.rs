//! Diameter-bounded partitioning of candidate tuples.
//!
//! Partitions are grown by recursive median splitting (a k-d-tree-style
//! sweep): starting from the full candidate set, the dimension with the
//! widest spread is split at its median until every leaf fits the *diameter*
//! budget — the per-dimension spread as a fraction of the normalized feature
//! range — in **every** dimension; oversized leaves that already satisfy the
//! diameter are chopped along their widest dimension into size-budget
//! chunks. Unlike a one-dimensional greedy sweep, this keeps partitions
//! compact in all feature dimensions at once, so the number of groups stays
//! near `N / max_size` instead of fragmenting.
//!
//! Each partition elects a **medoid** representative: the member closest to
//! the partition's feature centroid. Crucially the medoid is a *real tuple*
//! of the relation, so a sketch solution over representatives is already a
//! genuine package (the refine phase can always fall back to it).
//!
//! Splitting is deterministic: value ties are broken by candidate position,
//! so the same inputs always produce the same partitions.

use crate::features::FeatureMatrix;

/// The output of partitioning: disjoint groups of candidate positions, each
/// with a medoid representative, plus the inverse position→partition map.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Candidate positions per partition (each sorted ascending).
    pub partitions: Vec<Vec<usize>>,
    /// The medoid's candidate position, one per partition.
    pub representatives: Vec<usize>,
    /// `assignment[position]` is the id of the partition holding `position`.
    pub assignment: Vec<usize>,
}

impl Partitioning {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when no partitions exist (empty candidate set).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

/// Elect the member of `members` whose feature vector is closest (L2) to the
/// members' centroid; ties resolve to the lowest position.
fn medoid(features: &FeatureMatrix, members: &[usize]) -> usize {
    let d = features.dims();
    let mut centroid = vec![0.0f64; d];
    for &i in members {
        for (c, &v) in centroid.iter_mut().zip(features.row(i)) {
            *c += v;
        }
    }
    for c in &mut centroid {
        *c /= members.len() as f64;
    }
    let mut best = members[0];
    let mut best_dist = f64::INFINITY;
    for &i in members {
        let dist: f64 = features
            .row(i)
            .iter()
            .zip(&centroid)
            .map(|(v, c)| (v - c) * (v - c))
            .sum();
        if dist < best_dist {
            best_dist = dist;
            best = i;
        }
    }
    best
}

/// The dimension with the widest spread over `members`, and that spread.
fn widest_dimension(features: &FeatureMatrix, members: &[usize]) -> (usize, f64) {
    let mut widest = (0usize, 0.0f64);
    for dim in 0..features.dims() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in members {
            let v = features.row(i)[dim];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread > widest.1 {
            widest = (dim, spread);
        }
    }
    widest
}

/// Sort `members` by one dimension, ties by position (determinism).
fn sort_by_dimension(features: &FeatureMatrix, members: &mut [usize], dim: usize) {
    members.sort_by(|&a, &b| {
        features.row(a)[dim]
            .partial_cmp(&features.row(b)[dim])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

/// Recursively split `members` until every leaf satisfies both budgets.
fn split(
    features: &FeatureMatrix,
    mut members: Vec<usize>,
    max_size: usize,
    diameter: f64,
    leaves: &mut Vec<Vec<usize>>,
) {
    if members.is_empty() {
        return;
    }
    let (dim, spread) = widest_dimension(features, &members);
    if spread > diameter && members.len() > 1 {
        // Median split along the widest dimension; splitting by count (not
        // by value) guarantees progress even under heavy value ties.
        sort_by_dimension(features, &mut members, dim);
        let right = members.split_off(members.len() / 2);
        split(features, members, max_size, diameter, leaves);
        split(features, right, max_size, diameter, leaves);
    } else if members.len() > max_size {
        // Diameter satisfied but too many tuples: chop along the widest
        // dimension into size-budget chunks.
        sort_by_dimension(features, &mut members, dim);
        for chunk in members.chunks(max_size) {
            leaves.push(chunk.to_vec());
        }
    } else {
        leaves.push(members);
    }
}

/// Partition the candidates of `features` into groups of at most `max_size`
/// tuples whose normalized per-dimension spread never exceeds `diameter`
/// (clamped to `(0, 1]`; `1` disables the diameter bound since features live
/// in `[0, 1]`).
pub fn partition_candidates(
    features: &FeatureMatrix,
    max_size: usize,
    diameter: f64,
) -> Partitioning {
    let n = features.num_rows();
    let max_size = max_size.max(1);
    let diameter = if diameter <= 0.0 {
        1.0
    } else {
        diameter.min(1.0)
    };

    let mut partitions: Vec<Vec<usize>> = Vec::new();
    split(
        features,
        (0..n).collect(),
        max_size,
        diameter,
        &mut partitions,
    );

    let mut assignment = vec![0usize; n];
    let mut representatives = Vec::with_capacity(partitions.len());
    for (pid, members) in partitions.iter_mut().enumerate() {
        members.sort_unstable();
        for &i in members.iter() {
            assignment[i] = pid;
        }
        representatives.push(medoid(features, members));
    }

    Partitioning {
        partitions,
        representatives,
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let n = rows.len();
        let d = rows.first().map(Vec::len).unwrap_or(0);
        FeatureMatrix::new(n, d, rows.into_iter().flatten().collect())
    }

    #[test]
    fn partitions_cover_all_positions_disjointly() {
        let f = matrix(vec![
            vec![0.0, 0.1],
            vec![0.9, 0.8],
            vec![0.05, 0.12],
            vec![1.0, 0.9],
            vec![0.5, 0.5],
        ]);
        let p = partition_candidates(&f, 3, 0.2);
        let mut all: Vec<usize> = p.partitions.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        for (pid, members) in p.partitions.iter().enumerate() {
            for &i in members {
                assert_eq!(p.assignment[i], pid);
            }
        }
        // The two clusters {0, 2} and {1, 3} must not be merged with the
        // midpoint under a 0.2 diameter.
        assert!(p.len() >= 3);
    }

    #[test]
    fn diameter_bound_holds_in_every_dimension() {
        let f = matrix(
            (0..40)
                .map(|i| vec![i as f64 / 39.0, (i % 7) as f64 / 6.0])
                .collect(),
        );
        for diameter in [0.1, 0.3, 1.0] {
            let p = partition_candidates(&f, 40, diameter);
            for members in &p.partitions {
                for dim in 0..2 {
                    let vals: Vec<f64> = members.iter().map(|&i| f.row(i)[dim]).collect();
                    let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                        - vals.iter().cloned().fold(f64::INFINITY, f64::min);
                    assert!(
                        spread <= diameter + 1e-12,
                        "diameter {diameter}: spread {spread} in dim {dim}"
                    );
                }
            }
        }
    }

    #[test]
    fn size_budget_is_respected_and_representative_is_a_member() {
        let f = matrix((0..25).map(|i| vec![i as f64 / 24.0]).collect());
        let p = partition_candidates(&f, 4, 1.0);
        assert!(p.partitions.iter().all(|m| m.len() <= 4));
        assert_eq!(p.len(), p.representatives.len());
        for (pid, &rep) in p.representatives.iter().enumerate() {
            assert!(p.partitions[pid].contains(&rep));
        }
        assert!(!p.is_empty());
    }

    #[test]
    fn medoid_is_the_most_central_member() {
        let f = matrix(vec![
            vec![0.0, 0.0],
            vec![0.5, 0.5], // centroid of the three is (0.5, 0.5)-ish
            vec![1.0, 1.0],
        ]);
        let p = partition_candidates(&f, 3, 1.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.representatives[0], 1);
    }

    #[test]
    fn identical_tuples_land_in_one_partition_up_to_the_size_cap() {
        let f = matrix(vec![vec![0.3, 0.7]; 10]);
        let p = partition_candidates(&f, 6, 0.05);
        assert_eq!(p.len(), 2);
        assert_eq!(p.partitions[0].len(), 6);
        assert_eq!(p.partitions[1].len(), 4);
    }

    #[test]
    fn empty_input_yields_no_partitions() {
        let f = matrix(vec![]);
        let p = partition_candidates(&f, 8, 0.2);
        assert!(p.is_empty());
        assert!(p.assignment.is_empty());
    }

    #[test]
    fn zero_or_negative_diameter_disables_the_bound_gracefully() {
        let f = matrix(vec![vec![0.0], vec![1.0]]);
        let p = partition_candidates(&f, 10, 0.0);
        // Clamped to 1.0: both fit in one partition.
        assert_eq!(p.len(), 1);
    }
}
