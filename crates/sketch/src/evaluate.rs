//! The SketchRefine evaluation driver.
//!
//! Given a prepared [`Instance`], evaluation proceeds in three phases:
//!
//! 1. **Partition** — embed every candidate tuple into a normalized
//!    distributional feature space ([`crate::features`]) and group similar
//!    tuples with the diameter-bounded greedy partitioner
//!    ([`crate::partition`]).
//! 2. **Sketch** — solve the query with SummarySearch over a reduced relation
//!    holding one medoid representative per partition, each allowed a
//!    multiplicity of up to `partition size × per-tuple bound`. Because the
//!    medoid is a real tuple, the sketch solution is itself a valid package
//!    and is validated out-of-sample like any other.
//! 3. **Refine** — walk the partitions the sketch actually used (largest
//!    allocation first) and re-solve a small SILP over that partition's real
//!    tuples while every other partition's current choice is frozen via
//!    pinned variables ([`Instance::fix_multiplicity`]). A refine step that
//!    comes back infeasible (or worse than the incumbent) falls back greedily
//!    to the medoid allocation; if no refined solution ever validates, the
//!    sketch solution itself is the answer — refinement can only improve it.
//!
//! Every intermediate package is validated against the out-of-sample stream,
//! and the best validated package wins, so SketchRefine inherits the same
//! feasibility guarantees as SummarySearch while each MILP it solves is
//! `O(√N)` rather than `O(N)` variables wide.

use crate::hierarchy::{partition_hierarchical, BlockFeatures};
use crate::partition::Partitioning;
use spq_core::package::{EvaluationResult, EvaluationStats, Package};
use spq_core::silp::Direction;
use spq_core::summary_search::evaluate_summary_search;
use spq_core::validation::{validate_with, ValidationReport};
use spq_core::{Instance, Result, SpqOptions};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Sparse candidate selection: candidate position → multiplicity.
type Selection = HashMap<usize, f64>;

fn worse(direction: Direction, candidate: f64, incumbent: f64) -> bool {
    match direction {
        Direction::Minimize => candidate > incumbent + 1e-9,
        Direction::Maximize => candidate < incumbent - 1e-9,
    }
}

fn merge_stats(into: &mut EvaluationStats, from: &EvaluationStats) {
    into.problems_solved += from.problems_solved;
    into.validations += from.validations;
    into.validation_scenarios += from.validation_scenarios;
    into.solver_nodes += from.solver_nodes;
    into.lp_pivots += from.lp_pivots;
    into.max_problem_coefficients = into
        .max_problem_coefficients
        .max(from.max_problem_coefficients);
}

/// The evaluation budget is exhausted or the query was cancelled. The
/// deadline was armed by `Instance::new` from `SpqOptions::time_limit`
/// (plus any cancellation token), so this one check covers both.
fn time_exhausted(opts: &SpqOptions) -> bool {
    opts.deadline.expired()
}

/// A copy of `opts` whose time limit is the budget still remaining on the
/// armed deadline, with the per-phase MILP solver cap applied (the solver
/// hands back its incumbent at the limit, so phases stay bounded without
/// losing feasibility). The deadline itself — including any cancellation
/// token — is carried along in the clone, so sub-instances re-arm to the
/// same absolute instant.
fn remaining_budget(opts: &SpqOptions) -> SpqOptions {
    let mut scoped = opts.clone();
    scoped.time_limit = opts
        .deadline
        .remaining()
        .map(|left| left.max(Duration::from_millis(1)));
    if let Some(cap) = opts.sketch.phase_solver_time_limit {
        scoped.solver.time_limit = Some(match scoped.solver.time_limit {
            Some(existing) => existing.min(cap),
            None => cap,
        });
    }
    scoped
}

/// Emit a phase-timing line on stderr when `SPQ_SKETCH_DEBUG` is set.
macro_rules! debug_trace {
    ($($arg:tt)*) => {
        if std::env::var_os("SPQ_SKETCH_DEBUG").is_some() {
            eprintln!($($arg)*);
        }
    };
}

/// Pick each partition's sketch representative.
///
/// For linear objectives with per-tuple coefficients the representative is
/// the *objective-best* member (ties broken toward the medoid's position
/// order): the sketch then sees each partition's potential rather than its
/// average, so partitions hiding a strong tuple behind a mediocre medoid
/// still get selected — the refine phase re-solves over the real members and
/// out-of-sample validation keeps the optimism honest. For probability
/// objectives (no per-tuple coefficient) the medoid is used as is.
fn choose_representatives(
    instance: &Instance<'_>,
    parts: &crate::partition::Partitioning,
) -> Result<Vec<usize>> {
    use spq_core::silp::{CoeffSource, SilpObjective};
    let coeffs = match &instance.silp.objective {
        SilpObjective::Linear { coeff, .. } if !matches!(coeff, CoeffSource::Constant(_)) => {
            instance.coefficients(coeff)?
        }
        _ => return Ok(parts.representatives.clone()),
    };
    let direction = instance.silp.objective.direction();
    let better = |a: f64, b: f64| match direction {
        Direction::Maximize => a > b,
        Direction::Minimize => a < b,
    };
    Ok(parts
        .partitions
        .iter()
        .map(|members| {
            let mut best = members[0];
            for &pos in members {
                if better(coeffs[pos], coeffs[best]) {
                    best = pos;
                }
            }
            best
        })
        .collect())
}

/// Partition ids the sketch solution touched, heaviest allocation first
/// (ties by ascending id, for determinism).
fn refine_order(current: &Selection, parts: &Partitioning) -> Vec<usize> {
    let mut per: HashMap<usize, f64> = HashMap::new();
    for (&pos, &mult) in current {
        *per.entry(parts.assignment[pos]).or_insert(0.0) += mult;
    }
    let mut order: Vec<(usize, f64)> = per.into_iter().collect();
    order.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    order.into_iter().map(|(pid, _)| pid).collect()
}

/// Evaluate a stochastic package query with SketchRefine.
///
/// This is the function `spq_sketch::install()` registers as the engine's
/// [`spq_core::Algorithm::SketchRefine`] evaluator; it can also be called
/// directly on a prepared instance.
pub fn evaluate_sketch_refine(instance: &Instance<'_>) -> Result<EvaluationResult> {
    let start = Instant::now();
    let opts = &instance.options;
    let n = instance.num_vars();
    let direction = instance.silp.objective.direction();

    // Small relations gain nothing from partitioning (a lone partition would
    // reproduce the full problem); solve them directly.
    if n <= opts.sketch.direct_solve_threshold {
        return evaluate_summary_search(instance);
    }

    // ---------------------------------------------------------------- phase 1
    let max_size = opts.sketch.effective_partition_size(n);
    let parts = {
        let _span = spq_obs::span("partition");
        // Hierarchical, summary-first partitioning: whole feature blocks are
        // routed by their resident [min, max] envelopes and only straddled
        // blocks page in rows, so partitioning a disk-backed million-tuple
        // relation never assembles the full N × d feature matrix.
        let features = BlockFeatures::from_instance(instance)?;
        partition_hierarchical(&features, max_size, opts.sketch.diameter_fraction)
    };

    debug_trace!(
        "[sketch] partitioned {n} tuples into {} groups (max size {max_size}) in {:?}",
        parts.partitions.len(),
        start.elapsed()
    );

    // ---------------------------------------------------------------- phase 2
    let mut stats = EvaluationStats::default();
    let representatives = choose_representatives(instance, &parts)?;
    let mut sketch_silp = instance.silp.clone();
    sketch_silp.tuples = representatives
        .iter()
        .map(|&pos| instance.silp.tuples[pos])
        .collect();
    // The representative stands in for its whole partition, so the query's
    // per-tuple repeat limit scales by the partition size; the constraint-
    // derived bounds (budget, COUNT caps) still apply through the capping.
    sketch_silp.repeat_bound = None;
    let per_tuple_cap = instance
        .silp
        .repeat_bound
        .map(f64::from)
        .unwrap_or_else(|| f64::from(opts.fallback_multiplicity_bound));
    let mut sketch_opts = remaining_budget(opts);
    // `cap_multiplicity_bounds` can only tighten, so the derived bounds must
    // start above every partition capacity: lift the fallback (the only
    // non-constraint component of the derivation) out of the way, then cap.
    // Constraint-derived bounds (budget, COUNT ≤ u) still apply through the
    // min.
    sketch_opts.fallback_multiplicity_bound = u32::MAX;
    let mut sketch_instance = Instance::new(instance.relation, sketch_silp, sketch_opts)?;
    let caps: Vec<f64> = parts
        .partitions
        .iter()
        .map(|members| members.len() as f64 * per_tuple_cap)
        .collect();
    sketch_instance.cap_multiplicity_bounds(&caps);

    let sketch = {
        let _span = spq_obs::span("sketch");
        evaluate_summary_search(&sketch_instance)?
    };
    // Basis of the sketch solution: each refine sub-solve is seeded with the
    // most recent basis (sketch first, then the latest accepted refine), so
    // structurally compatible re-solves restart from a known-good vertex.
    // The solver validates the shape and falls back to a cold start when a
    // sub-problem's dimensions differ.
    let mut latest_basis = sketch.final_basis.clone();
    debug_trace!(
        "[sketch] sketch solve over {} representatives: feasible={} in {:?} (cumulative)",
        parts.partitions.len(),
        sketch.feasible,
        start.elapsed()
    );
    merge_stats(&mut stats, &sketch.stats);
    stats.scenarios_used = sketch.stats.scenarios_used;
    stats.summaries_used = sketch.stats.summaries_used;

    // Map global tuple indices back to candidate positions of the full
    // instance (medoids and partition members are both subsets of it).
    let pos_of: HashMap<usize, usize> = instance
        .silp
        .tuples
        .iter()
        .enumerate()
        .map(|(pos, &tuple)| (tuple, pos))
        .collect();

    let mut current: Selection = HashMap::new();
    if let Some(package) = &sketch.package {
        for &(tuple, mult) in &package.multiplicities {
            current.insert(pos_of[&tuple], f64::from(mult));
        }
    }

    // Legality of a selection under the query's REPEAT limit. The sketch
    // deliberately relaxes it (a representative pools its partition's
    // capacity), so selections become legal progressively as partitions are
    // refined.
    let repeat_limit = instance.silp.repeat_bound.map(f64::from);
    let repeat_legal = |selection: &Selection| match repeat_limit {
        Some(limit) => selection.values().all(|&m| m <= limit + 1e-9),
        None => true,
    };

    // Seed the incumbent from the sketch only when the sketch solution
    // already respects the REPEAT limit: the pooled representative has a
    // legitimately *inflated* objective, and using it as the bar would make
    // every REPEAT-respecting refinement look like a regression.
    let mut best: Option<(Selection, ValidationReport)> =
        if sketch.feasible && repeat_legal(&current) {
            sketch
                .package
                .as_ref()
                .map(|p| (current.clone(), p.validation.clone()))
        } else {
            None
        };

    if current.is_empty() {
        // Nothing selected (e.g. the sketch proved the query infeasible):
        // the sketch result already references real tuples, return it as is.
        stats.wall_time = start.elapsed();
        return Ok(EvaluationResult {
            package: sketch.package,
            feasible: sketch.feasible,
            stats,
            final_basis: latest_basis,
        });
    }

    // ---------------------------------------------------------------- phase 3
    for pid in refine_order(&current, &parts) {
        if time_exhausted(opts) {
            break;
        }
        let members = &parts.partitions[pid];
        // Freeze every selection outside this partition.
        let mut frozen: Vec<(usize, f64)> = current
            .iter()
            .filter(|(&pos, _)| parts.assignment[pos] != pid)
            .map(|(&pos, &mult)| (pos, mult))
            .collect();
        frozen.sort_unstable_by_key(|&(pos, _)| pos);

        let mut sub_silp = instance.silp.clone();
        sub_silp.tuples = members
            .iter()
            .chain(frozen.iter().map(|(pos, _)| pos))
            .map(|&pos| instance.silp.tuples[pos])
            .collect();
        let mut sub_opts = remaining_budget(opts);
        sub_opts.max_scenarios = sub_opts.max_scenarios.min(
            opts.sketch
                .refine_max_scenarios
                .max(sub_opts.initial_scenarios),
        );
        // Warm-start this partition's solves from the most recent basis.
        sub_opts.solver.warm_start = latest_basis.clone();
        let mut sub_instance = Instance::new(instance.relation, sub_silp, sub_opts)?;
        for (offset, &(_, mult)) in frozen.iter().enumerate() {
            sub_instance.fix_multiplicity(members.len() + offset, mult);
        }

        let refined = {
            let _span = spq_obs::span("refine");
            evaluate_summary_search(&sub_instance)?
        };
        debug_trace!(
            "[sketch] refine partition {pid} ({} members, {} frozen): feasible={} in {:?} (cumulative)",
            members.len(),
            frozen.len(),
            refined.feasible,
            start.elapsed()
        );
        merge_stats(&mut stats, &refined.stats);
        stats.outer_iterations += 1;
        if refined.final_basis.is_some() {
            latest_basis = refined.final_basis.clone();
        }

        let package = match (refined.feasible, refined.package) {
            (true, Some(package)) => package,
            // Greedy fallback: the medoid allocation for this partition
            // stays in place and the walk continues.
            _ => continue,
        };

        // Replace this partition's allocation with the refined choice.
        let mut candidate: Selection = frozen.iter().copied().collect();
        for &(tuple, mult) in &package.multiplicities {
            let pos = pos_of[&tuple];
            if parts.assignment[pos] == pid {
                candidate.insert(pos, f64::from(mult));
            }
        }
        let report = package.validation;
        // Acceptance: while the incumbent still violates the REPEAT limit,
        // every validated refinement is progress toward legality and its
        // (necessarily deflating) objective must not be held against it;
        // once the incumbent is legal, only legal, non-worse candidates
        // replace it.
        let accept = report.feasible
            && match &best {
                None => true,
                Some((incumbent_selection, incumbent)) => {
                    if !repeat_legal(incumbent_selection) {
                        true
                    } else {
                        repeat_legal(&candidate)
                            && !worse(
                                direction,
                                report.objective_estimate,
                                incumbent.objective_estimate,
                            )
                    }
                }
            };
        if accept {
            current = candidate.clone();
            best = Some((candidate, report));
        }
    }

    // ---------------------------------------------------------------- answer
    let selection = match best {
        Some((selection, _)) => selection,
        None => {
            // No validated-feasible selection was ever found; surface the
            // sketch's best effort.
            stats.wall_time = start.elapsed();
            return Ok(EvaluationResult {
                package: sketch.package,
                feasible: false,
                stats,
                final_basis: latest_basis,
            });
        }
    };

    // Re-validate once on the full instance — full budget, no early stop,
    // deadline-exempt (it is the answer's certificate; cancellation still
    // interrupts) — so the final report (objective estimate and ε
    // certificate) is anchored to the original problem.
    let mut x = vec![0.0f64; n];
    for (&pos, &mult) in &selection {
        x[pos] = mult;
    }
    let final_report = validate_with(instance, &x, &opts.certificate_validation())?;
    stats.validations += 1;
    stats.validation_scenarios += final_report.scenarios_used;
    stats.wall_time = start.elapsed();
    // The sketch intentionally relaxes the query's REPEAT limit for its
    // representatives (a representative stands in for its whole partition).
    // Refined partitions re-solve under the original limit, but a partition
    // that kept its sketch allocation through the greedy fallback may still
    // exceed it — report such a package honestly as infeasible rather than
    // returning a REPEAT-violating "feasible" answer.
    let repeat_ok = match instance.silp.repeat_bound {
        Some(limit) => selection.values().all(|&m| m <= f64::from(limit) + 1e-9),
        None => true,
    };
    let feasible = final_report.feasible && repeat_ok;
    let package = Package::from_dense(&x, &instance.silp.tuples, final_report);
    Ok(EvaluationResult {
        package: Some(package),
        feasible,
        stats,
        final_basis: latest_basis,
    })
}
