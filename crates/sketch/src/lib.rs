//! # spq-sketch — SketchRefine for stochastic package queries
//!
//! SummarySearch (the paper's Algorithm 2) keeps the number of *scenarios*
//! in each MILP small, but every candidate tuple still becomes a decision
//! variable, so solve cost grows with the relation. This crate implements
//! the partition–sketch–refine strategy of *Stochastic SketchRefine* (Haque
//! et al., 2024; see `PAPERS.md`), which also bounds the number of
//! *variables* per MILP and thereby scales stochastic package queries to
//! million-tuple relations:
//!
//! 1. [`features`] embeds every candidate tuple into a normalized feature
//!    space built from the distributions of the attributes the query reads
//!    (expectation and spread per stochastic column, value per deterministic
//!    column).
//! 2. [`hierarchy`] groups distributionally similar tuples with a
//!    deterministic, diameter-bounded *hierarchical* sweep in the style of
//!    DistPartition: fixed-size feature blocks are routed by resident
//!    `[min, max]` envelopes and only blocks a split straddles are paged
//!    in; each leaf elects a *medoid* representative — a real tuple, so
//!    sketch answers are themselves valid packages. (The dense flat
//!    partitioner survives in [`partition`] for small candidate sets and as
//!    the reference semantics.)
//! 3. [`evaluate`] solves the *sketch* query over the representatives (each
//!    granted the multiplicity capacity of its whole partition), then
//!    *refines* the chosen partitions one at a time over their real tuples
//!    with the other partitions frozen, greedily falling back to the medoid
//!    allocation whenever a refine step fails to validate.
//!
//! ## Wiring into the engine
//!
//! `spq-core` cannot depend on this crate (SketchRefine builds on the
//! engine's own instance, SummarySearch, and validation machinery), so the
//! engine dispatches [`spq_core::Algorithm::SketchRefine`] through a
//! process-global hook. Call [`install`] once at startup:
//!
//! ```
//! use spq_core::{Algorithm, SpqEngine, SpqOptions};
//! use spq_mcdb::{vg::NormalNoise, RelationBuilder};
//!
//! spq_sketch::install();
//!
//! let relation = RelationBuilder::new("t")
//!     .deterministic_f64("price", vec![100.0, 100.0, 100.0])
//!     .stochastic("Gain", NormalNoise::around(vec![5.0, 1.0, 0.3], vec![1.0, 0.3, 0.1]))
//!     .build()
//!     .unwrap();
//! let engine = SpqEngine::new(SpqOptions::for_tests());
//! let result = engine
//!     .evaluate(
//!         &relation,
//!         "SELECT PACKAGE(*) FROM t \
//!          SUCH THAT SUM(price) <= 200 AND \
//!          SUM(Gain) >= -1 WITH PROBABILITY >= 0.9 \
//!          MAXIMIZE EXPECTED SUM(Gain)",
//!         Algorithm::SketchRefine,
//!     )
//!     .unwrap();
//! assert!(result.feasible);
//! ```
//!
//! [`evaluate_sketch_refine`] can also be invoked directly on a prepared
//! [`spq_core::Instance`], bypassing the hook.

pub mod evaluate;
pub mod features;
pub mod hierarchy;
pub mod partition;

pub use evaluate::evaluate_sketch_refine;
pub use features::{candidate_features, FeatureMatrix};
pub use hierarchy::{partition_hierarchical, BlockFeatures, BLOCK_ROWS};
pub use partition::{partition_candidates, Partitioning};

/// Register [`evaluate_sketch_refine`] as the engine's
/// [`spq_core::Algorithm::SketchRefine`] evaluator. Idempotent; call once
/// before the first evaluation (e.g. at the top of `main`).
pub fn install() {
    spq_core::register_sketch_refine(evaluate_sketch_refine);
}

#[cfg(test)]
mod tests {
    #[test]
    fn install_registers_the_hook() {
        super::install();
        super::install(); // idempotent
        assert!(spq_core::sketch_refine_available());
    }
}
