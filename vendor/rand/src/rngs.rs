//! RNG implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast RNG: xoshiro256++ (the algorithm the real `SmallRng` uses on
/// 64-bit platforms). Not cryptographically secure.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state would be a fixed point; nudge it.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

/// The standard RNG, aliased to the same engine in this stub.
pub type StdRng = SmallRng;
