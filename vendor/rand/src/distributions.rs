//! Sampling traits and the uniform distribution.

use crate::RngCore;
use std::ops::Range;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Sample one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types that can be sampled from their "standard" distribution
/// (`Rng::gen`): uniform over the full domain for integers, `[0, 1)` for
/// floats, fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Sample a standard value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// 53 random mantissa bits → `[0, 1)`.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the spans used here; the
                // real crate uses widening-multiply rejection sampling.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform distribution over a half-open range, compatible with
/// `rand::distributions::Uniform` / `rand_distr::Uniform`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: Copy> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }

    /// Uniform over `[lo, hi]` (treated as half-open in this stub; the
    /// difference is immaterial for `f64` sampling).
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy,
    Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (self.lo..self.hi).sample_single(rng)
    }
}

/// Marker type matching `rand::distributions::Standard`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: StandardSample> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
