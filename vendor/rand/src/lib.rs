//! Minimal, API-compatible stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no access to a crates registry,
//! so the few external dependencies are vendored as stubs; swap this crate
//! for the real `rand = "0.8"` in `[workspace.dependencies]` when a registry
//! is available.
//!
//! Provided surface:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill`,
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`,
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real `SmallRng`
//!   uses on 64-bit targets),
//! * [`distributions::Distribution`] + [`distributions::Standard`] /
//!   [`distributions::Uniform`].

pub mod distributions;
pub mod rngs;

pub use distributions::Distribution;

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and raw bytes.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (matching the
    /// real crate's documented behavior).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::StandardSample,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Fill a mutable byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let n = rng.gen_range(0..10usize);
            assert!(n < 10);
            let m = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&m));
        }
    }

    #[test]
    fn uniform_floats_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(123);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let x = rng.gen_range(0.0..1.0);
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }
}
