//! Minimal, API-compatible stand-in for the parts of `rand_distr` this
//! workspace uses: `Normal`, `Pareto`, `Exp`, `Poisson`, `StudentT`, and the
//! re-exported `Uniform` / `Distribution`. Swap for the real
//! `rand_distr = "0.4"` in `[workspace.dependencies]` when a registry is
//! available.
//!
//! The samplers favor clarity over peak throughput (Box–Muller, inversion,
//! Marsaglia–Tsang) but are statistically faithful: each distribution's mean
//! and tail behavior match the textbook definitions, which is what the
//! engine's seeded Monte Carlo tests assert.

use rand::RngCore;

pub use rand::distributions::{Distribution, Uniform};

/// Error type shared by the distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistrError {}

/// Uniform in `(0, 1]`: never returns 0 so `ln` is safe.
#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    u.min(1.0)
}

#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard normal deviate via Box–Muller (discarding the paired value
/// keeps the sampler stateless, which deterministic re-generation relies on).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_open(rng);
    let u2 = unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct; fails on non-finite parameters or negative `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError("Normal: bad parameters"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Standard normal distribution marker, like `rand_distr::StandardNormal`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal(rng)
    }
}

/// Pareto distribution with the given scale and shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_shape: f64,
}

impl Pareto {
    /// Construct; fails unless both parameters are positive and finite.
    pub fn new(scale: f64, shape: f64) -> Result<Self, DistrError> {
        if scale.is_nan()
            || shape.is_nan()
            || scale <= 0.0
            || shape <= 0.0
            || !scale.is_finite()
            || !shape.is_finite()
        {
            return Err(DistrError("Pareto: bad parameters"));
        }
        Ok(Pareto {
            scale,
            inv_shape: 1.0 / shape,
        })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: scale * U^(-1/shape).
        self.scale * unit_open(rng).powf(-self.inv_shape)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Construct; fails unless `lambda` is positive and finite.
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if lambda.is_nan() || lambda <= 0.0 || !lambda.is_finite() {
            return Err(DistrError("Exp: bad lambda"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Poisson distribution with rate `lambda`. Samples are returned as `f64`,
/// matching `rand_distr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Construct; fails unless `lambda` is positive and finite.
    pub fn new(lambda: f64) -> Result<Self, DistrError> {
        if lambda.is_nan() || lambda <= 0.0 || !lambda.is_finite() {
            return Err(DistrError("Poisson: bad lambda"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= unit_open(rng);
                if p <= l {
                    return k as f64;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction; adequate for
            // the large-rate regime and keeps the sampler O(1).
            let z = standard_normal(rng);
            (self.lambda + self.lambda.sqrt() * z + 0.5)
                .floor()
                .max(0.0)
        }
    }
}

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Construct; fails unless `nu` is positive and finite.
    pub fn new(nu: f64) -> Result<Self, DistrError> {
        if nu.is_nan() || nu <= 0.0 || !nu.is_finite() {
            return Err(DistrError("StudentT: bad nu"));
        }
        Ok(StudentT { nu })
    }
}

impl Distribution<f64> for StudentT {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // t = Z / sqrt(V / nu), V ~ chi^2(nu) = Gamma(nu/2, 2).
        let z = standard_normal(rng);
        let v = 2.0 * sample_gamma(rng, self.nu / 2.0);
        z / (v / self.nu).sqrt()
    }
}

/// Gamma(shape, 1) via Marsaglia–Tsang; the shape < 1 case is boosted
/// through Gamma(shape + 1).
fn sample_gamma<R: RngCore + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        let u = unit_open(rng);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = unit_open(rng);
        if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, n: usize, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let m = mean_of(&d, 40_000, 1);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        let mut rng = SmallRng::seed_from_u64(2);
        let var = (0..40_000)
            .map(|_| {
                let x = d.sample(&mut rng) - 3.0;
                x * x
            })
            .sum::<f64>()
            / 40_000.0;
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let d = Exp::new(0.5).unwrap();
        assert!((mean_of(&d, 40_000, 3) - 2.0).abs() < 0.05);
    }

    #[test]
    fn pareto_exceeds_scale_and_matches_mean() {
        let d = Pareto::new(1.0, 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
        // mean = shape * scale / (shape - 1) = 1.5
        assert!((mean_of(&d, 60_000, 5) - 1.5).abs() < 0.05);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let d = Poisson::new(4.0).unwrap();
        let m = mean_of(&d, 40_000, 6);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        let big = Poisson::new(64.0).unwrap();
        let m = mean_of(&big, 20_000, 7);
        assert!((m - 64.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn student_t_is_symmetric_with_heavy_tails() {
        let d = StudentT::new(3.0).unwrap();
        let m = mean_of(&d, 60_000, 8);
        assert!(m.abs() < 0.05, "mean {m}");
        // Var of t(3) is nu/(nu-2) = 3.
        let mut rng = SmallRng::seed_from_u64(9);
        let var = (0..60_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                x * x
            })
            .sum::<f64>()
            / 60_000.0;
        assert!(var > 1.5, "var {var} should exceed the normal's 1.0");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(StudentT::new(0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
