//! Minimal, API-compatible stand-in for the parts of `criterion` this
//! workspace uses: `Criterion`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark runs a
//! small fixed number of timed iterations and prints the mean and min wall
//! time per iteration. That keeps `cargo bench` fast and dependency-free
//! while preserving the harness structure; swap for the real
//! `criterion = "0.5"` in `[workspace.dependencies]` when a registry is
//! available.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror of criterion's CLI configuration hook; accepts and ignores
    /// `cargo bench` arguments (filters, `--bench`, etc.).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, 10, &mut f);
        self
    }

    /// Flush results (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        BenchmarkId { label: s.into() }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stub's time budget is implicit in the
    /// sample count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.sample_size, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    if bencher.times.is_empty() {
        println!("  {label}: no measurements");
        return;
    }
    let total: Duration = bencher.times.iter().sum();
    let mean = total / bencher.times.len() as u32;
    let min = bencher.times.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?}, min {min:?} over {} samples",
        bencher.times.len()
    );
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples. The payload's
    /// result is passed through [`black_box`] so it is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        for &n in &[2u64, 4] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.bench_function("flat", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(stub_group, payload);

    #[test]
    fn group_macro_produces_runnable_fn() {
        stub_group();
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 5,
            times: Vec::new(),
        };
        b.iter(|| 40 + 2);
        assert_eq!(b.times.len(), 5);
    }
}
