//! Minimal stand-in for `serde`: the registry is unreachable in the build
//! environment, and nothing in this workspace actually serializes through
//! serde yet — the `#[derive(Serialize, Deserialize)]` annotations only
//! declare intent for downstream consumers. The traits are therefore plain
//! markers and the derives emit empty impls. Swap this crate for the real
//! `serde = { version = "1", features = ["derive"] }` in
//! `[workspace.dependencies]` when a registry is available; no other code
//! needs to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for std::time::Duration {}
impl Deserialize for std::time::Duration {}

#[cfg(test)]
mod tests {
    use crate as serde;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Plain {
        a: u32,
        b: String,
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Kind {
        One,
        Two(u64),
    }

    #[derive(Serialize, Deserialize)]
    #[allow(dead_code)]
    struct Generic<T: Clone> {
        inner: Vec<T>,
    }

    fn assert_both<T: serde::Serialize + serde::Deserialize>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_both::<Plain>();
        assert_both::<Kind>();
        assert_both::<Generic<u8>>();
    }
}
