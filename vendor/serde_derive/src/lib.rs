//! Stub `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde stand-in. The traits are markers, so the derives only need
//! to emit empty trait impls. Parsing is done directly on the token stream
//! (no `syn`/`quote` available offline): we skip attributes and visibility,
//! find the `struct`/`enum`/`union` keyword, take the type name, and carry
//! any generic parameters over to the impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker_impl(input, "Deserialize")
}

fn derive_marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = parse_type_header(input)
        .unwrap_or_else(|| panic!("serde stub derive: could not find type name"));
    // No leading `::` — the path resolves through the extern prelude in
    // consuming crates, and through a `use crate as serde` alias in the
    // stub's own tests.
    let code = if generics.is_empty() {
        format!("impl serde::{trait_name} for {name} {{}}")
    } else {
        let decl = generics.join(", ");
        let args: Vec<String> = generics.iter().map(|g| param_name(g)).collect();
        let args = args.join(", ");
        format!("impl<{decl}> serde::{trait_name} for {name}<{args}> {{}}")
    };
    code.parse()
        .expect("serde stub derive: generated impl must parse")
}

/// Returns the type name and the raw generic parameter declarations
/// (top-level comma-split contents of the `<...>` after the name).
fn parse_type_header(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id)
                if id.to_string() == "struct"
                    || id.to_string() == "enum"
                    || id.to_string() == "union" =>
            {
                let name = match tokens.next()? {
                    TokenTree::Ident(n) => n.to_string(),
                    _ => return None,
                };
                let generics = match tokens.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        tokens.next();
                        collect_generics(&mut tokens)
                    }
                    _ => Vec::new(),
                };
                return Some((name, generics));
            }
            // `pub`, `pub(crate)`, doc comments, etc. — skip.
            _ => {}
        }
    }
    None
}

/// Collect the `<...>` generic parameter list, splitting on top-level commas.
fn collect_generics(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Vec<String> {
    let mut depth = 1usize;
    let mut current = String::new();
    let mut params = Vec::new();
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    if !current.trim().is_empty() {
                        params.push(current.trim().to_string());
                    }
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push_str(&tt.to_string());
        current.push(' ');
    }
    if !current.trim().is_empty() {
        params.push(current.trim().to_string());
    }
    params
}

/// Extract the bare parameter name from a declaration like `T : Clone`,
/// `'a`, or `const N : usize`.
fn param_name(decl: &str) -> String {
    let head = decl.split(':').next().unwrap_or(decl).trim();
    if let Some(rest) = head.strip_prefix("const ") {
        rest.trim().to_string()
    } else {
        head.to_string()
    }
}
