//! Minimal, API-compatible stand-in for the parts of `proptest` this
//! workspace uses: the `proptest!` macro with `#![proptest_config(...)]`,
//! `any::<T>()`, numeric-range strategies, `collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike the real crate there is **no shrinking** and the case RNG is
//! seeded deterministically from the test name, so runs are reproducible
//! byte for byte. Swap for the real `proptest = "1"` in
//! `[workspace.dependencies]` when a registry is available.

use std::ops::Range;

pub mod collection;
pub mod prelude;

/// Error produced by a single test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; try other inputs.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Runner configuration; only `cases` is honored by the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated per case.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 64,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Deterministic xoshiro256++ used to drive input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Tuples of strategies generate tuples of values (matching the real
/// crate's tuple composition).
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values; the real crate's `any::<f64>()`
        // includes NaN/inf, which no caller here wants.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Drives the cases of one property function. Used by the expansion of
/// [`proptest!`]; not part of the public API of the real crate.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// New runner for the named test, seeded from the name.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.as_bytes() {
            seed ^= u64::from(*b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            name,
            rng: TestRng::from_seed(seed),
        }
    }

    /// Number of successful cases required.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Maximum rejections tolerated while searching for one acceptable case.
    pub fn max_rejects(&self) -> u32 {
        self.config.max_local_rejects
    }

    /// The input RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Panic with context on failure; `Ok`/`Reject` pass through.
    pub fn unwrap_case(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(TestCaseError::Fail(message)) = result {
            panic!(
                "proptest case {case} of {name} failed: {message}",
                name = self.name
            );
        }
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Reject the current inputs; the runner will try different ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Mirrors the real crate's surface for the patterns
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($config, stringify!($name));
                let cases = runner.cases();
                let max_rejects = runner.max_rejects();
                for case in 0..cases {
                    let mut rejects = 0u32;
                    loop {
                        $( let $arg = $crate::Strategy::generate(&($strategy), runner.rng()); )+
                        let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        match outcome {
                            ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                                rejects += 1;
                                if rejects > max_rejects {
                                    // Match the real crate: too many rejects is
                                    // an error, not a vacuous pass.
                                    panic!(
                                        "proptest case {} of {}: {} prop_assume! rejects \
                                         exceeded the limit; the property was never exercised",
                                        case,
                                        stringify!($name),
                                        rejects
                                    );
                                }
                            }
                            other => {
                                runner.unwrap_case(case, other);
                                break;
                            }
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 1.5f64..9.5,
            n in 3usize..7,
            v in proptest::collection::vec(0u32..4, 2..5),
        ) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn assume_rejects_without_failing(b in any::<bool>(), k in any::<u64>()) {
            prop_assume!(b);
            prop_assert!(b, "k was {k}");
        }

        #[test]
        fn exact_vec_lengths(v in proptest::collection::vec(-1.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u32..2) {
                prop_assert!(false, "forced failure");
            }
        }
        inner();
    }
}
