//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.usize_in(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
