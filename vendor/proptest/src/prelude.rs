//! The usual `use proptest::prelude::*;` imports.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, ProptestConfig,
    Strategy, TestCaseError, TestRunner,
};
